"""Tests for fixed-point quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.quant import (
    FixedPointQuantizer,
    QuantizationScheme,
    decode_array,
    encode_array,
    normal_quantization,
    rquant,
    weight_range,
)


def test_scheme_validation():
    with pytest.raises(ValueError):
        QuantizationScheme(precision=1)
    with pytest.raises(ValueError):
        QuantizationScheme(precision=17)


def test_scheme_levels_and_codes():
    scheme = QuantizationScheme(precision=8)
    assert scheme.levels == 127
    assert scheme.num_codes == 256
    assert "m=8" in scheme.describe()
    assert scheme.with_precision(4).precision == 4


def test_weight_range_symmetric_and_asymmetric():
    weights = np.array([-0.2, 0.5, 0.1])
    assert weight_range(weights, asymmetric=False) == (-0.5, 0.5)
    assert weight_range(weights, asymmetric=True) == (-0.2, 0.5)


def test_weight_range_degenerate_tensor():
    lo, hi = weight_range(np.zeros(5), asymmetric=True)
    assert hi > lo


def test_encode_decode_round_trip_error_bounded():
    rng = np.random.default_rng(0)
    weights = rng.normal(0, 0.1, size=1000)
    for scheme in (rquant(8), normal_quantization(8), rquant(4)):
        lo, hi = weight_range(weights, scheme.asymmetric)
        codes = encode_array(weights, lo, hi, scheme)
        decoded = decode_array(codes, lo, hi, scheme)
        delta = (hi - lo) / (2 * scheme.levels) if scheme.asymmetric else hi / scheme.levels
        assert np.abs(decoded - weights).max() <= delta + 1e-12


def test_codes_fit_in_precision_bits():
    rng = np.random.default_rng(1)
    weights = rng.normal(size=500)
    for precision in (2, 3, 4, 8):
        scheme = rquant(precision)
        lo, hi = weight_range(weights, True)
        codes = encode_array(weights, lo, hi, scheme)
        assert codes.max() < 2**precision


def test_signed_codes_use_twos_complement():
    scheme = QuantizationScheme(precision=8, asymmetric=False, unsigned=False, rounding=True)
    weights = np.array([-1.0, 0.0, 1.0])
    codes = encode_array(weights, -1.0, 1.0, scheme)
    # -1.0 -> -127 -> two's complement 129; 0 -> 0; 1.0 -> 127.
    np.testing.assert_array_equal(codes, [129, 0, 127])
    decoded = decode_array(codes, -1.0, 1.0, scheme)
    np.testing.assert_allclose(decoded, weights, atol=1e-12)


def test_unsigned_codes_offset():
    scheme = rquant(8)
    weights = np.array([-1.0, 0.0, 1.0])
    codes = encode_array(weights, -1.0, 1.0, scheme)
    np.testing.assert_array_equal(codes, [0, 127, 254])


def test_rounding_reduces_quantization_error():
    rng = np.random.default_rng(2)
    weights = [rng.normal(0, 0.1, size=200)]
    scheme_round = rquant(4)
    scheme_trunc = QuantizationScheme(precision=4, rounding=False)
    err_round = FixedPointQuantizer(scheme_round).quantization_error(weights)
    err_trunc = FixedPointQuantizer(scheme_trunc).quantization_error(weights)
    assert err_round < err_trunc


def test_per_layer_vs_global_ranges():
    arrays = [np.array([-0.1, 0.1]), np.array([-1.0, 1.0])]
    per_layer = FixedPointQuantizer(rquant(8)).compute_ranges(arrays)
    assert per_layer[0] != per_layer[1]
    global_scheme = QuantizationScheme(precision=8, per_layer=False)
    global_ranges = FixedPointQuantizer(global_scheme).compute_ranges(arrays)
    assert global_ranges[0] == global_ranges[1]


def test_quantized_weights_flat_round_trip(rng):
    arrays = [rng.normal(size=(3, 4)), rng.normal(size=7)]
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize(arrays, names=["a", "b"])
    assert quantized.num_tensors == 2
    assert quantized.num_weights == 19
    assert quantized.num_bits == 19 * 8
    flat = quantized.flat_codes()
    rebuilt = quantized.with_flat_codes(flat)
    for original, recon in zip(quantized.codes, rebuilt.codes):
        np.testing.assert_array_equal(original, recon)


def test_with_flat_codes_wrong_size_raises(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=5)])
    with pytest.raises(ValueError):
        quantized.with_flat_codes(np.zeros(3, dtype=np.uint8))


def test_quantize_empty_raises():
    with pytest.raises(ValueError):
        FixedPointQuantizer(rquant(8)).quantize([])


def test_copy_is_independent(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=10)])
    copy = quantized.copy()
    copy.codes[0][:] = 0
    assert not np.array_equal(copy.codes[0], quantized.codes[0])


@given(
    weights=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(1, 50),
        elements=st.floats(-10, 10, allow_nan=False),
    ),
    precision=st.sampled_from([2, 4, 8]),
    asymmetric=st.booleans(),
    unsigned=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_property_round_trip_within_one_step(weights, precision, asymmetric, unsigned):
    """decode(encode(w)) is within one quantization step of w for any scheme."""
    scheme = QuantizationScheme(
        precision=precision, asymmetric=asymmetric, unsigned=unsigned, rounding=True
    )
    lo, hi = weight_range(weights, asymmetric)
    codes = encode_array(weights, lo, hi, scheme)
    decoded = decode_array(codes, lo, hi, scheme)
    if asymmetric:
        delta = (hi - lo) / (2 * scheme.levels)
    else:
        delta = max(abs(lo), abs(hi)) / scheme.levels
    assert np.abs(decoded - weights).max() <= delta * 1.5 + 1e-9


@given(
    weights=hnp.arrays(
        dtype=np.float64,
        shape=st.integers(2, 30),
        elements=st.floats(-5, 5, allow_nan=False),
    )
)
@settings(max_examples=40, deadline=None)
def test_property_quantization_idempotent(weights):
    """Quantize-dequantize is idempotent: applying it twice changes nothing."""
    quantizer = FixedPointQuantizer(rquant(8))
    once = quantizer.quantize_dequantize([weights])[0]
    twice = quantizer.quantize_dequantize([once])[0]
    np.testing.assert_allclose(once, twice, atol=1e-9)


# -- flat-code buffer management and aliasing ------------------------------


def test_flat_codes_default_is_a_snapshot(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=(3, 4)), rng.normal(size=7)])
    flat = quantized.flat_codes()
    flat ^= 0xFF
    np.testing.assert_array_equal(flat ^ 0xFF, quantized.flat_codes())


def test_flat_codes_out_buffer_is_reused(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=10), rng.normal(size=6)])
    buffer = np.empty(quantized.num_weights, dtype=np.uint8)
    out = quantized.flat_codes(out=buffer)
    assert out is buffer
    np.testing.assert_array_equal(out, quantized.flat_codes())
    with pytest.raises(ValueError):
        quantized.flat_codes(out=np.empty(3, dtype=np.uint8))


def test_flat_codes_no_copy_multi_tensor_buffer(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=8), rng.normal(size=5)])
    first = quantized.flat_codes(copy=False)
    np.testing.assert_array_equal(first, quantized.flat_codes())
    # The borrow is refilled (not stale) after the codes change...
    quantized.codes[0][:] = 0
    second = quantized.flat_codes(copy=False)
    assert second[0] == 0
    # ...and reuses the same allocation.
    assert second is first


def test_flat_codes_no_copy_single_tensor_is_view(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=(4, 4))])
    view = quantized.flat_codes(copy=False)
    assert view.base is quantized.codes[0]


def test_with_flat_codes_default_does_not_alias_input_or_source(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=(3, 4)), rng.normal(size=7)])
    source_codes = [c.copy() for c in quantized.codes]
    flat = quantized.flat_codes()
    rebuilt = quantized.with_flat_codes(flat)
    # Mutating the rebuilt codes corrupts neither the input vector nor the
    # source instance.
    for codes in rebuilt.codes:
        codes ^= 0xFF
    np.testing.assert_array_equal(flat, quantized.flat_codes())
    for before, after in zip(source_codes, quantized.codes):
        np.testing.assert_array_equal(before, after)


def test_with_flat_codes_no_copy_views_the_input(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=6), rng.normal(size=4)])
    flat = quantized.flat_codes()
    rebuilt = quantized.with_flat_codes(flat, copy=False)
    flat[0] ^= 0x01
    assert rebuilt.codes[0].reshape(-1)[0] == flat[0]
    # Even the no-copy path never aliases the source instance's codes.
    source = [c.copy() for c in quantized.codes]
    for codes in rebuilt.codes:
        codes ^= 0xFF
    for before, after in zip(source, quantized.codes):
        np.testing.assert_array_equal(before, after)


def test_with_flat_codes_round_trip_values_unchanged(rng):
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantizer.quantize([rng.normal(size=(2, 3)), rng.normal(size=5)])
    rebuilt = quantized.with_flat_codes(quantized.flat_codes())
    for a, b in zip(rebuilt.codes, quantized.codes):
        assert a.dtype == b.dtype
        np.testing.assert_array_equal(a, b)


# -- delta de-quantization -------------------------------------------------


def _delta_setup(rng, sizes=((6, 7), (30,), (2, 2, 2))):
    quantizer = FixedPointQuantizer(rquant(8))
    arrays = [rng.normal(size=s) for s in sizes]
    quantized = quantizer.quantize(arrays)
    clean = quantizer.dequantize(quantized)
    return quantizer, quantized, clean


def test_dequantize_delta_matches_full_decode(rng):
    from repro.biterror import inject_into_quantized

    quantizer, quantized, clean = _delta_setup(rng)
    for method in ("dense", "sparse"):
        perturbed, touched = inject_into_quantized(
            quantized, 0.05, np.random.default_rng(0), method=method,
            return_positions=True,
        )
        full = quantizer.dequantize(perturbed)
        delta = quantizer.dequantize_delta(clean, perturbed, touched)
        for a, b in zip(full, delta):
            np.testing.assert_array_equal(a, b)  # bit-identical, not allclose


def test_dequantize_delta_empty_positions_copies_clean(rng):
    quantizer, quantized, clean = _delta_setup(rng)
    out = quantizer.dequantize_delta(clean, quantized, np.empty(0, dtype=np.int64))
    for a, b in zip(out, clean):
        np.testing.assert_array_equal(a, b)
        assert a is not b  # a copy, safe for the caller to mutate


def test_dequantize_delta_does_not_mutate_clean_weights(rng):
    from repro.biterror import inject_into_quantized

    quantizer, quantized, clean = _delta_setup(rng)
    snapshots = [w.copy() for w in clean]
    perturbed, touched = inject_into_quantized(
        quantized, 0.1, np.random.default_rng(1), return_positions=True
    )
    quantizer.dequantize_delta(clean, perturbed, touched)
    for before, after in zip(snapshots, clean):
        np.testing.assert_array_equal(before, after)


def test_dequantize_delta_validation(rng):
    quantizer, quantized, clean = _delta_setup(rng)
    with pytest.raises(ValueError, match="clean tensors"):
        quantizer.dequantize_delta(clean[:-1], quantized, np.array([0]))
    with pytest.raises(ValueError, match="positions"):
        quantizer.dequantize_delta(clean, quantized, np.array([-1]))
    with pytest.raises(ValueError, match="positions"):
        quantizer.dequantize_delta(clean, quantized, np.array([quantized.num_weights]))
    bad = [np.zeros((1, 1)) for _ in clean]
    with pytest.raises(ValueError, match="shape"):
        quantizer.dequantize_delta(bad, quantized, np.array([0]))


def test_decode_array_lut_path_matches_elementwise(rng):
    """uint8/uint16 full-width arrays take the lookup-table gather; it must be
    bit-identical to the elementwise reference on the same codes."""
    for precision, dtype in ((8, np.uint8), (16, np.uint16)):
        scheme = rquant(precision)
        codes = rng.integers(0, 2**precision, size=2000).astype(dtype)
        lut = decode_array(codes, -0.73, 1.19, scheme)
        reference = decode_array(codes.astype(np.int64), -0.73, 1.19, scheme)
        np.testing.assert_array_equal(lut, reference)


def test_flat_codes_out_dtype_mismatch_raises(rng):
    quantizer = FixedPointQuantizer(rquant(16))
    quantized = quantizer.quantize([rng.normal(size=10)])
    with pytest.raises(ValueError, match="dtype"):
        quantized.flat_codes(out=np.empty(10, dtype=np.uint8))


# -- fused single-pass encode -------------------------------------------------


def _reference_encode(weights, q_min, q_max, scheme):
    """The historical elementwise-temporary encode chain, kept as ground truth."""
    weights = np.asarray(weights, dtype=np.float64)
    levels = scheme.levels
    if scheme.asymmetric:
        values = (weights - q_min) / (q_max - q_min) * 2.0 - 1.0
    else:
        scale = max(abs(q_min), abs(q_max))
        values = weights / scale
    values = np.clip(values, -1.0, 1.0)
    scaled = values * levels
    integers = np.rint(scaled) if scheme.rounding else np.trunc(scaled)
    integers = np.clip(integers, -levels, levels).astype(np.int64)
    if scheme.unsigned:
        codes = integers + levels
    else:
        codes = np.mod(integers, scheme.num_codes)
    dtype = np.uint8 if scheme.precision <= 8 else np.uint16
    return codes.astype(dtype)


def _edge_case_weights(q_min, q_max, rng):
    """Weights hitting every encode edge: boundaries, overflow, zeros, ties."""
    span = q_max - q_min
    return np.concatenate(
        [
            rng.normal(0.0, max(abs(q_min), abs(q_max)), size=400),
            np.array(
                [
                    q_min,
                    q_max,
                    q_min - span,  # clipped below
                    q_max + span,  # clipped above
                    0.0,
                    -0.0,
                    (q_min + q_max) / 2.0,  # rounding tie candidates
                    np.nextafter(q_min, q_max),
                    np.nextafter(q_max, q_min),
                ]
            ),
        ]
    )


@pytest.mark.parametrize("precision", [2, 3, 8, 12, 16])
@pytest.mark.parametrize("asymmetric", [False, True])
@pytest.mark.parametrize("unsigned", [False, True])
@pytest.mark.parametrize("rounding", [False, True])
def test_fused_encode_matches_reference_all_schemes(
    precision, asymmetric, unsigned, rounding, rng
):
    scheme = QuantizationScheme(
        precision=precision,
        asymmetric=asymmetric,
        unsigned=unsigned,
        rounding=rounding,
    )
    for q_min, q_max in [(-1.0, 1.0), (-0.37, 0.81), (0.1, 0.9), (-2.5, -0.5)]:
        weights = _edge_case_weights(q_min, q_max, rng)
        expected = _reference_encode(weights, q_min, q_max, scheme)
        actual = encode_array(weights, q_min, q_max, scheme)
        assert actual.dtype == expected.dtype
        np.testing.assert_array_equal(actual, expected)


def test_fused_encode_out_and_scratch_buffers(rng):
    scheme = QuantizationScheme(precision=8)
    weights = rng.normal(0.0, 1.0, size=(13, 7))
    q_min, q_max = weight_range(weights, scheme.asymmetric)
    expected = encode_array(weights, q_min, q_max, scheme)
    out = np.empty(weights.shape, dtype=np.uint8)
    scratch = np.empty(weights.shape, dtype=np.float64)
    result = encode_array(weights, q_min, q_max, scheme, out=out, scratch=scratch)
    assert result is out
    np.testing.assert_array_equal(result, expected)
    # Buffers are reusable across calls with fresh inputs.
    shifted = weights + 0.1
    lo2, hi2 = weight_range(shifted, scheme.asymmetric)
    result2 = encode_array(shifted, lo2, hi2, scheme, out=out, scratch=scratch)
    np.testing.assert_array_equal(result2, encode_array(shifted, lo2, hi2, scheme))


def test_fused_encode_signed_out_buffer(rng):
    scheme = QuantizationScheme(precision=8, unsigned=False, asymmetric=False)
    weights = rng.normal(0.0, 1.0, size=64)
    q_min, q_max = weight_range(weights, scheme.asymmetric)
    out = np.empty(weights.shape, dtype=np.uint8)
    result = encode_array(weights, q_min, q_max, scheme, out=out)
    assert result is out
    np.testing.assert_array_equal(out, _reference_encode(weights, q_min, q_max, scheme))


def test_fused_encode_buffer_validation(rng):
    scheme = QuantizationScheme(precision=8)
    weights = rng.normal(size=10)
    q_min, q_max = weight_range(weights, scheme.asymmetric)
    with pytest.raises(ValueError, match="out"):
        encode_array(weights, q_min, q_max, scheme, out=np.empty(9, dtype=np.uint8))
    with pytest.raises(ValueError, match="out"):
        encode_array(weights, q_min, q_max, scheme, out=np.empty(10, dtype=np.uint16))
    with pytest.raises(ValueError, match="scratch"):
        encode_array(weights, q_min, q_max, scheme, scratch=np.empty(9))
    with pytest.raises(ValueError, match="scratch"):
        encode_array(
            weights, q_min, q_max, scheme, scratch=np.empty(10, dtype=np.float32)
        )
    with pytest.raises(ValueError, match="alias"):
        encode_array(weights, q_min, q_max, scheme, scratch=weights)


def test_fused_encode_does_not_mutate_input(rng):
    scheme = QuantizationScheme(precision=8)
    weights = rng.normal(size=50)
    original = weights.copy()
    q_min, q_max = weight_range(weights, scheme.asymmetric)
    encode_array(weights, q_min, q_max, scheme)
    np.testing.assert_array_equal(weights, original)


@settings(deadline=None, max_examples=40)
@given(
    weights=hnp.arrays(
        np.float64,
        hnp.array_shapes(max_dims=2, max_side=20),
        elements=st.floats(-10.0, 10.0, allow_nan=False),
    ),
    precision=st.integers(2, 16),
    asymmetric=st.booleans(),
    unsigned=st.booleans(),
    rounding=st.booleans(),
)
def test_property_fused_encode_matches_reference(
    weights, precision, asymmetric, unsigned, rounding
):
    scheme = QuantizationScheme(
        precision=precision,
        asymmetric=asymmetric,
        unsigned=unsigned,
        rounding=rounding,
    )
    q_min, q_max = weight_range(weights, asymmetric)
    np.testing.assert_array_equal(
        encode_array(weights, q_min, q_max, scheme),
        _reference_encode(weights, q_min, q_max, scheme),
    )
