"""Tests for quantization-aware training helpers."""

import numpy as np
import pytest

from repro.quant import (
    dequantize_into,
    model_weight_arrays,
    quantize_dequantize_model,
    quantize_model,
    set_model_weights,
    swap_weights,
)


def test_model_weight_arrays_are_references(small_mlp):
    arrays = model_weight_arrays(small_mlp)
    arrays[0][...] = 7.0
    assert np.all(small_mlp.parameters()[0].data == 7.0)


def test_quantize_model_records_names(small_mlp, rquant8):
    quantized = quantize_model(small_mlp, rquant8)
    assert quantized.names == [name for name, _ in small_mlp.named_parameters()]
    assert quantized.num_weights == small_mlp.num_parameters()


def test_quantize_dequantize_model_close_to_original(small_mlp, rquant8):
    original = [p.data.copy() for p in small_mlp.parameters()]
    fake = quantize_dequantize_model(small_mlp, rquant8)
    for a, b in zip(original, fake):
        assert np.abs(a - b).max() < 0.05


def test_set_model_weights_shape_check(small_mlp):
    arrays = [p.data.copy() for p in small_mlp.parameters()]
    arrays[0] = np.zeros((2, 2))
    with pytest.raises(ValueError):
        set_model_weights(small_mlp, arrays)


def test_set_model_weights_count_check(small_mlp):
    with pytest.raises(ValueError):
        set_model_weights(small_mlp, [np.zeros(3)])


def test_swap_weights_restores_originals(small_mlp):
    original = [p.data.copy() for p in small_mlp.parameters()]
    replacement = [np.zeros_like(a) for a in original]
    with swap_weights(small_mlp, replacement):
        for param in small_mlp.parameters():
            assert np.all(param.data == 0.0)
    for param, orig in zip(small_mlp.parameters(), original):
        np.testing.assert_array_equal(param.data, orig)


def test_swap_weights_restores_on_exception(small_mlp):
    original = [p.data.copy() for p in small_mlp.parameters()]
    replacement = [np.zeros_like(a) for a in original]
    with pytest.raises(RuntimeError):
        with swap_weights(small_mlp, replacement):
            raise RuntimeError("boom")
    for param, orig in zip(small_mlp.parameters(), original):
        np.testing.assert_array_equal(param.data, orig)


def test_dequantize_into_writes_model(small_mlp, rquant8):
    quantized = quantize_model(small_mlp, rquant8)
    before = [p.data.copy() for p in small_mlp.parameters()]
    dequantize_into(small_mlp, quantized, rquant8)
    after = [p.data for p in small_mlp.parameters()]
    # Weights changed (to their quantized values) but stayed close.
    assert any(not np.array_equal(a, b) for a, b in zip(before, after))
    for a, b in zip(before, after):
        assert np.abs(a - b).max() < 0.05


def test_swap_weights_is_zero_copy_by_reference(small_mlp):
    """The swap points Parameter.data at the given arrays (no copies) and at
    the untouched originals afterwards."""
    originals = [p.data for p in small_mlp.parameters()]
    replacements = [np.zeros_like(p.data) for p in small_mlp.parameters()]
    with swap_weights(small_mlp, replacements):
        for param, replacement in zip(small_mlp.parameters(), replacements):
            assert param.data is replacement
    for param, original in zip(small_mlp.parameters(), originals):
        assert param.data is original


def test_swap_weights_validates_like_set_model_weights(small_mlp):
    arrays = model_weight_arrays(small_mlp)
    with pytest.raises(ValueError):
        with swap_weights(small_mlp, arrays[:-1]):
            pass
    bad = [np.zeros((1, 1)) for _ in arrays]
    with pytest.raises(ValueError):
        with swap_weights(small_mlp, bad):
            pass
    # A failed swap must leave the model untouched.
    for param, original in zip(small_mlp.parameters(), arrays):
        assert param.data is original
