"""Telemetry through the real sweep engine: spans when on, nothing when off."""

from __future__ import annotations

import os

import numpy as np

from repro import telemetry
from repro.biterror import make_error_fields
from repro.quant.qat import quantize_model
from repro.runtime import ResultStore, SerialExecutor, SweepSpec, run_sweep
from repro.telemetry.report import load_run_records, merged_run_metrics


def make_spec(blob_data, small_mlp, rquant8):
    _, test = blob_data
    quantized = quantize_model(small_mlp, rquant8)
    fields = make_error_fields(quantized.num_weights, 8, 2, seed=5)
    spec = SweepSpec(test, batch_size=32)
    spec.add_model("m", small_mlp, rquant8, quantized)
    spec.add_field_set("f", fields)
    for rate in (0.005, 0.01):
        spec.add_field_jobs("m", "f", rate)
    return spec


def test_disabled_sweep_writes_no_telemetry(
    blob_data, small_mlp, rquant8, tmp_path
):
    telemetry.disable()
    store = ResultStore(str(tmp_path))
    run_sweep(make_spec(blob_data, small_mlp, rquant8),
              executor=SerialExecutor(), store=store)
    assert not os.path.exists(tmp_path / "telemetry")


def test_enabled_sweep_records_plan_run_and_group_spans(
    blob_data, small_mlp, rquant8, tmp_path
):
    with telemetry.recording(str(tmp_path), name="t", echo=None):
        store = ResultStore(str(tmp_path))
        results = run_sweep(make_spec(blob_data, small_mlp, rquant8),
                            executor=SerialExecutor(), store=store)
        # Resumed re-run: every cell is warm, so no groups execute.
        run_sweep(make_spec(blob_data, small_mlp, rquant8),
                  executor=SerialExecutor(), store=ResultStore(str(tmp_path)))

    records = load_run_records(str(tmp_path))
    spans = {r["name"]: r for r in records if r["type"] == "span"}
    assert {"engine.plan", "engine.run", "engine.group"} <= set(spans)
    # Group spans nest under the run span.
    groups = [r for r in records
              if r["type"] == "span" and r["name"] == "engine.group"]
    assert all(g["parent"] == spans["engine.run"]["span"] for g in groups)
    assert sum(g["cells"] for g in groups) == len(results)

    merged = merged_run_metrics(str(tmp_path))
    assert merged["counters"]["engine.cells"] == len(results)
    assert merged["counters"]["store.puts"] == len(results)
    assert merged["counters"]["store.resume_hits"] == len(results)
    assert merged["counters"]["engine.clean_decodes"] == 1  # memoized


def test_identical_results_with_and_without_telemetry(
    blob_data, small_mlp, rquant8, tmp_path
):
    telemetry.disable()
    plain = run_sweep(make_spec(blob_data, small_mlp, rquant8),
                      executor=SerialExecutor())
    with telemetry.recording(str(tmp_path), name="t", echo=None):
        observed = run_sweep(make_spec(blob_data, small_mlp, rquant8),
                             executor=SerialExecutor())
    assert plain == observed


def test_trainer_epoch_spans_note_loss_and_lr(tmp_path):
    from repro.core.trainer import Trainer, TrainerConfig
    from repro.data import ArrayDataset

    rng = np.random.default_rng(0)
    dataset = ArrayDataset(
        rng.normal(size=(32, 6)), rng.integers(0, 3, size=32), num_classes=3
    )
    from repro.models import MLP

    model = MLP(in_features=6, num_classes=3, hidden=(8,),
                rng=np.random.default_rng(1))
    config = TrainerConfig(epochs=2, batch_size=8, quantization_aware=False)
    with telemetry.recording(str(tmp_path), name="t", echo=None):
        Trainer(model, None, config).train(dataset)
    records = load_run_records(str(tmp_path))
    train_spans = [r for r in records
                   if r["type"] == "span" and r["name"] == "trainer.train"]
    epoch_spans = [r for r in records
                   if r["type"] == "span" and r["name"] == "trainer.epoch"]
    assert len(train_spans) == 1 and train_spans[0]["epochs"] == 2
    assert [s["epoch"] for s in epoch_spans] == [0, 1]
    assert all(s["parent"] == train_spans[0]["span"] for s in epoch_spans)
    assert all("loss" in s and "lr" in s and "train_error" in s
               for s in epoch_spans)
