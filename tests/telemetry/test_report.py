"""The read path: sink loading, metric merging, report/tail rendering."""

from __future__ import annotations

import io

from repro import telemetry
from repro.telemetry.report import (
    load_run_records,
    main,
    merged_run_metrics,
    render_report,
    render_tail,
)


def make_run(tmp_path):
    """Two sinks shaped like a coordinator + one worker run."""
    with telemetry.recording(str(tmp_path), name="events-host-1", echo=None) as rec:
        with rec.span("engine.plan", jobs=4):
            pass
        rec.event("cluster.spawn", workers=2)
        rec.count("queue.enqueued", 2)
    with telemetry.recording(str(tmp_path), name="worker-w1", echo=None) as rec:
        rec.event("worker.start", worker="w1")
        with rec.span("worker.item", worker="w1", item="group-abc", jobs=2) as span:
            span.note(cells=2, completed=True)
        rec.count("worker.items")
        rec.count("worker.cells", 2)
    return str(tmp_path)


def test_load_run_records_merges_sinks_in_time_order(tmp_path):
    run_dir = make_run(tmp_path)
    records = load_run_records(run_dir)
    assert {r["sink"] for r in records} == {"events-host-1", "worker-w1"}
    timestamps = [r.get("ts", 0.0) for r in records]
    assert timestamps == sorted(timestamps)


def test_merged_run_metrics_sums_across_sinks(tmp_path):
    run_dir = make_run(tmp_path)
    merged = merged_run_metrics(run_dir)
    assert merged["counters"]["queue.enqueued"] == 2
    assert merged["counters"]["worker.items"] == 1
    assert merged["counters"]["worker.cells"] == 2
    # Spans fed the per-stage timers on both sinks.
    assert merged["timers"]["span.worker.item"]["count"] == 1


def test_merged_run_metrics_uses_only_each_sinks_last_snapshot(tmp_path):
    with telemetry.recording(str(tmp_path), name="w", echo=None) as rec:
        rec.count("items")
        rec.flush_metrics()
        rec.count("items")  # close() flushes the cumulative total (2)
    merged = merged_run_metrics(str(tmp_path))
    assert merged["counters"]["items"] == 2  # not 1 + 2


def test_render_report_shows_stages_items_health_and_timeline(tmp_path):
    run_dir = make_run(tmp_path)
    stream = io.StringIO()
    assert render_report(run_dir, stream=stream) == 0
    text = stream.getvalue()
    assert "per-stage time breakdown" in text
    assert "engine.plan" in text and "worker.item" in text
    assert "group-abc" in text  # the worker item table
    assert "queue / worker health" in text
    assert "queue.enqueued = 2" in text
    assert "cluster.spawn" in text  # the timeline
    assert "worker=w1" in text


def test_render_tail_prints_the_last_records(tmp_path):
    run_dir = make_run(tmp_path)
    stream = io.StringIO()
    assert render_tail(run_dir, n=2, stream=stream) == 0
    lines = [line for line in stream.getvalue().splitlines() if line]
    assert len(lines) == 2


def test_report_without_telemetry_exits_one(tmp_path):
    stream = io.StringIO()
    assert render_report(str(tmp_path), stream=stream) == 1
    assert "no telemetry records" in stream.getvalue()


def test_cli_main_dispatches_report_and_tail(tmp_path):
    run_dir = make_run(tmp_path)
    stream = io.StringIO()
    assert main(["report", run_dir, "--timeline", "3"], stream=stream) == 0
    assert main(["tail", run_dir, "-n", "1"], stream=stream) == 0
    assert main(["report", str(tmp_path / "empty")], stream=stream) == 1
