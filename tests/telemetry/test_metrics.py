"""Metrics: counters, gauges, timers, and shard-style snapshot merging."""

from __future__ import annotations

from repro.telemetry.metrics import Metrics, merge_snapshots


def test_counters_gauges_and_timers_snapshot():
    metrics = Metrics()
    assert metrics.is_empty()
    metrics.count("cells", 3)
    metrics.count("cells")
    metrics.gauge("depth", 7)
    metrics.gauge("depth", 5)  # last write wins
    metrics.observe("group", 0.2)
    metrics.observe("group", 0.4)
    snapshot = metrics.snapshot()
    assert snapshot["counters"] == {"cells": 4}
    assert snapshot["gauges"] == {"depth": 5}
    timer = snapshot["timers"]["group"]
    assert timer["count"] == 2
    assert abs(timer["total"] - 0.6) < 1e-12
    assert timer["min"] == 0.2 and timer["max"] == 0.4


def test_snapshot_is_a_copy_and_clear_resets():
    metrics = Metrics()
    metrics.count("a")
    snapshot = metrics.snapshot()
    metrics.count("a")
    assert snapshot["counters"] == {"a": 1}  # not a live view
    metrics.clear()
    assert metrics.is_empty()


def test_merge_sums_counters_keeps_last_gauge_and_folds_timers():
    shard_a = {
        "counters": {"worker.items": 2, "worker.lost_leases": 1},
        "gauges": {"queue.depth": 3},
        "timers": {"item": {"count": 2, "total": 1.0, "min": 0.4, "max": 0.6}},
    }
    shard_b = {
        "counters": {"worker.items": 3},
        "gauges": {"queue.depth": 0},
        "timers": {"item": {"count": 1, "total": 0.2, "min": 0.2, "max": 0.2}},
    }
    merged = merge_snapshots([shard_a, shard_b])
    assert merged["counters"] == {"worker.items": 5, "worker.lost_leases": 1}
    assert merged["gauges"] == {"queue.depth": 0}
    timer = merged["timers"]["item"]
    assert timer["count"] == 3
    assert abs(timer["total"] - 1.2) < 1e-12
    assert timer["min"] == 0.2 and timer["max"] == 0.6


def test_merge_tolerates_empty_and_malformed_shards():
    merged = merge_snapshots([
        {},
        {"counters": {"ok": 1}, "timers": {"t": "garbage"}},
        {"counters": {"ok": "not-a-number"}},
    ])
    assert merged["counters"]["ok"] == 1
    assert merged["timers"] == {}
    assert merge_snapshots([]) == {"counters": {}, "gauges": {}, "timers": {}}
