"""Sink compaction: fold many dead sinks into one summarized file.

The invariant under test throughout: ``merged_run_metrics`` returns the
same aggregate counters/timers before and after compaction — compaction
changes the *layout* of the telemetry directory, never its numbers.
"""

from __future__ import annotations

import os

from repro import telemetry
from repro.telemetry.compact import compact_run_telemetry
from repro.telemetry.report import (
    load_run_records,
    main,
    merged_run_metrics,
    render_report,
    telemetry_dir,
)


def make_service_like_run(tmp_path, sinks=3):
    """N worker-shaped sinks with counters, spans, and mixed-level events."""
    run_dir = str(tmp_path)
    for index in range(sinks):
        name = f"worker-w{index}"
        with telemetry.recording(run_dir, name=name, echo=None) as rec:
            rec.event("worker.start", worker=name)  # info: drop on compact
            if index == 0:
                rec.event(
                    "worker.item_failed", level="warning",
                    item="group-poison", exc_type="RuntimeError",
                )
            with rec.span("worker.item", worker=name, item=f"g{index}"):
                pass
            rec.count("worker.items")
            rec.count("worker.cells", 2)
    return run_dir


def sink_names(run_dir):
    return sorted(os.listdir(telemetry_dir(run_dir)))


def test_compact_folds_sinks_and_preserves_merged_metrics(tmp_path):
    run_dir = make_service_like_run(tmp_path, sinks=3)
    before = merged_run_metrics(run_dir)
    assert before["counters"]["worker.items"] == 3

    stats = compact_run_telemetry(run_dir, min_age=0.0)
    assert stats.changed
    assert stats.sinks_folded == 3
    assert stats.folded_sinks == ["worker-w0", "worker-w1", "worker-w2"]
    assert sink_names(run_dir) == ["compacted-0.jsonl"]

    after = merged_run_metrics(run_dir)
    assert after["counters"] == before["counters"]
    assert after["timers"] == before["timers"]


def test_compact_keeps_warnings_and_drops_info_events(tmp_path):
    run_dir = make_service_like_run(tmp_path, sinks=3)
    stats = compact_run_telemetry(run_dir, min_age=0.0)
    assert stats.events_kept == 1  # the warning survived
    assert stats.events_dropped == 3  # the info-level worker.start events
    assert stats.spans_summarized == 3

    records = load_run_records(run_dir)
    events = [r for r in records if r.get("type") == "event"]
    names = {e["name"] for e in events}
    assert "worker.item_failed" in names  # incident history intact
    assert "worker.start" not in names
    # Raw spans are gone; their aggregate lives in the summary event.
    assert not any(r.get("type") == "span" for r in records)
    summary = next(e for e in events if e["name"] == "telemetry.compacted")
    assert summary["sinks"] == ["worker-w0", "worker-w1", "worker-w2"]
    assert summary["spans"] == 3
    assert summary["span_wall_s"]["worker.item"]["count"] == 3


def test_compact_keep_level_debug_keeps_everything(tmp_path):
    run_dir = make_service_like_run(tmp_path, sinks=2)
    stats = compact_run_telemetry(run_dir, keep_level="debug", min_age=0.0)
    assert stats.events_dropped == 0
    assert stats.events_kept == 3  # two starts + one warning


def test_recompaction_converges_to_one_file(tmp_path):
    run_dir = make_service_like_run(tmp_path, sinks=2)
    before = merged_run_metrics(run_dir)
    assert compact_run_telemetry(run_dir, min_age=0.0).changed
    # New sinks arrive after the first compaction...
    with telemetry.recording(run_dir, name="worker-w9", echo=None) as rec:
        rec.count("worker.items")
    # ...and the second pass folds them *with* the previous compacted file.
    stats = compact_run_telemetry(run_dir, min_age=0.0)
    assert stats.sinks_folded == 2
    assert "compacted-0" in stats.folded_sinks
    assert sink_names(run_dir) == ["compacted-1.jsonl"]
    after = merged_run_metrics(run_dir)
    assert after["counters"]["worker.items"] == before["counters"]["worker.items"] + 1


def test_live_sinks_are_skipped(tmp_path):
    run_dir = make_service_like_run(tmp_path, sinks=2)
    # Everything was written moments ago: the default liveness guard holds.
    stats = compact_run_telemetry(run_dir, min_age=60.0)
    assert not stats.changed
    assert stats.sinks_skipped_live == 2
    assert len(sink_names(run_dir)) == 2


def test_single_sink_and_missing_dir_are_noops(tmp_path):
    assert not compact_run_telemetry(str(tmp_path / "ghost")).changed
    run_dir = str(tmp_path)
    with telemetry.recording(run_dir, name="solo", echo=None) as rec:
        rec.count("worker.items")
    stats = compact_run_telemetry(run_dir, min_age=0.0)
    assert not stats.changed  # one sink: nothing to consolidate
    assert sink_names(run_dir) == ["solo.jsonl"]


def test_report_still_renders_after_compaction(tmp_path):
    import io

    run_dir = make_service_like_run(tmp_path, sinks=3)
    compact_run_telemetry(run_dir, min_age=0.0)
    stream = io.StringIO()
    assert render_report(run_dir, stream=stream) == 0
    out = stream.getvalue()
    assert "compacted-0" in out
    assert "worker.items = 3" in out


def test_compact_cli(tmp_path, capsys):
    run_dir = make_service_like_run(tmp_path, sinks=2)
    assert main(["compact", run_dir, "--min-age", "0"]) == 0
    out = capsys.readouterr().out
    assert "compacted 2 sink(s)" in out
    assert "compacted-0.jsonl" in out
    # Nothing left to fold: the second invocation reports a clean no-op.
    assert main(["compact", run_dir, "--min-age", "0"]) == 0
    assert "nothing to compact" in capsys.readouterr().out
