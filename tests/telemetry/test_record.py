"""Recorder core: the module switch, spans, events, levels, sinks."""

from __future__ import annotations

import json
import os

from repro import telemetry
from repro.telemetry.record import NullRecorder, Recorder


def read_sink(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(line) for line in handle if line.strip()]


# -- disabled path ------------------------------------------------------------


def test_disabled_by_default_and_nothing_touches_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert not telemetry.enabled()
    rec = telemetry.get_recorder()
    assert isinstance(rec, NullRecorder)
    with rec.span("engine.group", jobs=3) as span:
        span.note(cells=3)
        rec.event("anything", level="error", detail="x")
        rec.count("engine.cells", 3)
        rec.observe("t", 0.5)
        rec.gauge("g", 1.0)
    rec.flush_metrics()
    assert os.listdir(tmp_path) == []  # no sink dir, no files, nowhere


def test_disabled_span_is_one_shared_singleton():
    # The no-allocation contract of @hot_path call sites: every span() call
    # on the null recorder returns the *same* object.
    rec = telemetry.get_recorder()
    assert rec.span("a") is rec.span("b")
    assert rec.span("a").span_id is None


def test_configure_disable_flips_the_switch(tmp_path):
    recorder = telemetry.configure(str(tmp_path), name="t")
    assert telemetry.enabled()
    assert telemetry.get_recorder() is recorder
    telemetry.disable()
    assert not telemetry.enabled()
    assert isinstance(telemetry.get_recorder(), NullRecorder)


def test_recording_scope_restores_the_previous_recorder(tmp_path):
    outer = telemetry.configure(str(tmp_path / "outer"), name="o")
    with telemetry.recording(str(tmp_path / "inner"), name="i") as inner:
        assert telemetry.get_recorder() is inner
        inner.event("scoped")
    assert telemetry.get_recorder() is outer
    assert read_sink(inner.path)[0]["name"] == "scoped"


# -- events and levels --------------------------------------------------------


def test_events_round_trip_with_fields(tmp_path):
    rec = telemetry.configure(str(tmp_path), name="t", echo=None)
    rec.event("worker.start", worker="w1", items=0)
    telemetry.disable()
    records = read_sink(rec.path)
    event = records[0]
    assert event["type"] == "event"
    assert event["name"] == "worker.start"
    assert event["level"] == "info"
    assert event["worker"] == "w1" and event["items"] == 0
    assert event["ts"] > 0


def test_level_filters_the_sink_and_echo_filters_stderr(tmp_path, capsys):
    rec = telemetry.configure(str(tmp_path), name="t", level="info", echo="warning")
    rec.event("fine", level="debug")  # below level: dropped entirely
    rec.event("note", level="info")  # sinked, not echoed
    rec.event("bad", level="warning", item="x")  # sinked and echoed
    telemetry.disable()
    names = [r["name"] for r in read_sink(rec.path) if r["type"] == "event"]
    assert names == ["note", "bad"]
    err = capsys.readouterr().err
    assert "[repro:warning] bad item=x" in err
    assert "note" not in err


# -- spans --------------------------------------------------------------------


def test_span_round_trip_records_timing_ids_and_notes(tmp_path):
    rec = telemetry.configure(str(tmp_path), name="t")
    with rec.span("engine.plan", jobs=7) as span:
        span.note(groups=2)
    telemetry.disable()
    record = read_sink(rec.path)[0]
    assert record["type"] == "span"
    assert record["name"] == "engine.plan"
    assert record["jobs"] == 7 and record["groups"] == 2
    assert record["parent"] is None
    assert record["span"].endswith("-1")
    assert record["wall_s"] >= 0.0 and record["cpu_s"] >= 0.0
    assert record["ts"] >= record["start"] > 0


def test_nested_spans_link_parents_and_failures_mark_ok_false(tmp_path):
    rec = telemetry.configure(str(tmp_path), name="t")
    try:
        with rec.span("outer"):
            with rec.span("inner"):
                raise RuntimeError("boom")
    except RuntimeError:
        pass
    telemetry.disable()
    inner, outer = read_sink(rec.path)[:2]  # inner closes (and writes) first
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["parent"] == outer["span"]
    assert inner["ok"] is False and inner["exc"] == "RuntimeError"
    assert outer["ok"] is False  # the exception unwound through it too


def test_every_span_feeds_the_stage_timer_metrics(tmp_path):
    rec = telemetry.configure(str(tmp_path), name="t")
    with rec.span("stage"):
        pass
    with rec.span("stage"):
        pass
    snapshot = rec.metrics.snapshot()
    telemetry.disable()
    assert snapshot["timers"]["span.stage"]["count"] == 2


# -- metrics snapshots --------------------------------------------------------


def test_flush_metrics_appends_cumulative_snapshots(tmp_path):
    rec = telemetry.configure(str(tmp_path), name="t")
    rec.flush_metrics()  # empty: writes nothing
    rec.count("queue.claims")
    rec.flush_metrics()
    rec.count("queue.claims")
    rec.gauge("depth", 4)
    telemetry.disable()  # close() flushes the final snapshot
    snapshots = [r for r in read_sink(rec.path) if r["type"] == "metrics"]
    assert len(snapshots) == 2
    assert snapshots[0]["counters"] == {"queue.claims": 1}
    assert snapshots[1]["counters"] == {"queue.claims": 2}  # cumulative
    assert snapshots[1]["gauges"] == {"depth": 4}


def test_worker_named_sinks_mirror_result_shard_naming(tmp_path):
    rec = Recorder(str(tmp_path), name="worker-host-1")
    rec.event("x")
    rec.close()
    assert os.path.basename(rec.path) == "worker-host-1.jsonl"
    assert os.path.dirname(rec.path) == str(tmp_path / "telemetry")


def test_config_round_trips_through_the_pool_initializer_shape(tmp_path):
    rec = telemetry.configure(str(tmp_path), name="t", level="debug", echo=None)
    config = rec.config()
    telemetry.disable()
    assert config.run_dir == str(tmp_path)
    assert config.level == "debug" and config.echo is None
