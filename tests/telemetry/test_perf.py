"""The shared --json benchmark flag and its perf-record rows."""

from __future__ import annotations

import argparse
import json

from repro.telemetry.perf import add_json_argument, perf_row, write_perf_records


def test_add_json_argument_defaults_to_none():
    parser = argparse.ArgumentParser()
    add_json_argument(parser)
    assert parser.parse_args([]).json_path is None
    assert parser.parse_args(["--json", "out.jsonl"]).json_path == "out.jsonl"


def test_write_perf_records_appends_rows(tmp_path):
    path = str(tmp_path / "perf.jsonl")
    write_perf_records(path, [
        perf_row("cluster", "speedup", 2.5, criterion=">= 2x", workers=4),
    ])
    write_perf_records(path, [perf_row("cluster", "wall_s", 1.25)])
    with open(path, "r", encoding="utf-8") as handle:
        rows = [json.loads(line) for line in handle]
    assert rows[0] == {
        "bench": "cluster", "metric": "speedup", "value": 2.5,
        "criterion": ">= 2x", "workers": 4,
    }
    assert rows[1]["metric"] == "wall_s" and rows[1]["criterion"] is None


def test_write_perf_records_is_a_noop_without_a_path(tmp_path):
    write_perf_records(None, [perf_row("b", "m", 1.0)])  # must not raise
    assert list(tmp_path.iterdir()) == []
