"""Fixtures for the telemetry tests: never leak a recorder across tests."""

from __future__ import annotations

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def no_recorder_leaks():
    """The module switch is process-global state; every test leaves it off."""
    telemetry.disable()
    yield
    telemetry.disable()
