"""Tests for the ResultStore: caching, resumability, corruption tolerance."""

import json
import os

import numpy as np
import pytest

from repro.biterror import make_error_fields
from repro.eval import rerr_sweep
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import (
    CellResult,
    ResultStore,
    SerialExecutor,
    SweepSpec,
    run_sweep,
)


class CountingExecutor(SerialExecutor):
    """Serial executor that records how many jobs it actually executes."""

    def __init__(self):
        self.jobs_executed = 0
        self.run_calls = 0

    def run(self, context, groups):
        self.run_calls += 1
        self.jobs_executed += sum(len(g) for g in groups)
        return super().run(context, groups)


@pytest.fixture()
def setup(blob_data):
    _, test = blob_data
    model = MLP(
        in_features=test.input_shape[0], num_classes=test.num_classes,
        hidden=(16,), rng=np.random.default_rng(2),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    fields = make_error_fields(quantized.num_weights, 8, 3, seed=21)
    return model, quantizer, quantized, fields, test


def build_spec(setup, rates):
    model, quantizer, quantized, fields, test = setup
    spec = SweepSpec(test, batch_size=32)
    spec.add_model("m", model, quantizer, quantized)
    spec.add_field_set("f", fields)
    for rate in rates:
        spec.add_field_jobs("m", "f", rate)
    return spec


def test_warm_store_executes_zero_jobs(setup, tmp_path):
    store = ResultStore(str(tmp_path / "run"))
    cold = CountingExecutor()
    first = run_sweep(build_spec(setup, [0.01, 0.02]), executor=cold, store=store)
    assert cold.jobs_executed == 1 + 2 * 3  # clean + 2 rates x 3 fields
    warm = CountingExecutor()
    second = run_sweep(build_spec(setup, [0.01, 0.02]), executor=warm, store=store)
    assert warm.jobs_executed == 0
    assert warm.run_calls == 0  # the executor is never even invoked
    assert second == first


def test_partially_warm_store_executes_only_missing_cells(setup, tmp_path):
    store = ResultStore(str(tmp_path / "run"))
    run_sweep(build_spec(setup, [0.01]), executor=SerialExecutor(), store=store)
    resumed = CountingExecutor()
    results = run_sweep(
        build_spec(setup, [0.01, 0.02]), executor=resumed, store=store
    )
    # Clean cell and the 0.01 cells are recalled; only rate 0.02 runs.
    assert resumed.jobs_executed == 3
    assert len(results) == 1 + 2 * 3


def test_store_reloads_from_disk_and_skips_corruption(setup, tmp_path):
    run_dir = str(tmp_path / "run")
    first = run_sweep(
        build_spec(setup, [0.015]), executor=SerialExecutor(), store=run_dir
    )
    store_path = os.path.join(run_dir, "results.jsonl")
    with open(store_path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "truncated-by-a-k')  # simulated interrupt
        handle.write("\n[1, 2, 3]\n")  # non-object record
    reloaded = ResultStore(run_dir)
    assert len(reloaded) == len(first)
    warm = CountingExecutor()
    assert run_sweep(build_spec(setup, [0.015]), executor=warm, store=reloaded) == first
    assert warm.jobs_executed == 0


def test_store_records_are_inspectable_and_puts_are_idempotent(setup, tmp_path):
    run_dir = str(tmp_path / "run")
    store = ResultStore(run_dir)
    run_sweep(build_spec(setup, [0.01]), executor=SerialExecutor(), store=store)
    with open(store.path, encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle]
    assert {r["kind"] for r in records} == {"clean", "field"}
    assert all("key" in r and "error" in r and "confidence" in r for r in records)
    lines_before = len(records)
    key = records[0]["key"]
    store.put(key, CellResult(0.0, 0.0))  # replay: must not append or clobber
    with open(store.path, encoding="utf-8") as handle:
        assert len(handle.readlines()) == lines_before
    assert store.get(key).error == records[0]["error"]


def test_rerr_sweep_accepts_store_path(setup, tmp_path):
    model, quantizer, quantized, fields, test = setup
    run_dir = str(tmp_path / "sweep-run")
    curve = rerr_sweep(
        model, quantizer, test, [0.0, 0.01], error_fields=fields, store=run_dir
    )
    assert os.path.exists(os.path.join(run_dir, "results.jsonl"))
    again = rerr_sweep(
        model, quantizer, test, [0.0, 0.01], error_fields=fields, store=run_dir
    )
    assert curve.mean_errors() == again.mean_errors()


def test_interrupted_sweep_keeps_completed_groups(setup, tmp_path):
    """Results stream to the store per group, so a crash loses only in-flight work."""

    class ExplodingExecutor(SerialExecutor):
        """Executes the first group, then dies — a simulated preemption."""

        def run(self, context, groups):
            from repro.runtime.executors import execute_group

            for i, group in enumerate(groups):
                if i >= 2:
                    raise RuntimeError("preempted")
                yield execute_group(context, group)

    store = ResultStore(str(tmp_path / "run"))
    with pytest.raises(RuntimeError, match="preempted"):
        run_sweep(build_spec(setup, [0.01, 0.02]), executor=ExplodingExecutor(),
                  store=store)
    # The clean group and the first rate group were persisted before the crash.
    assert len(store) == 1 + 3
    resumed = CountingExecutor()
    run_sweep(build_spec(setup, [0.01, 0.02]), executor=resumed, store=store)
    assert resumed.jobs_executed == 3  # only the interrupted rate re-runs
