"""Tests for serial/parallel executors: equivalence, grouping, degradation."""

import numpy as np
import pytest

from repro.biterror import ChipProfile, make_error_fields
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import (
    ParallelExecutor,
    SerialExecutor,
    SweepSpec,
    group_jobs,
    run_sweep,
)
from repro.runtime import executors as executors_module


@pytest.fixture(scope="module")
def grid(blob_data):
    """A small multi-kind sweep spec builder (fresh spec per call)."""
    _, test = blob_data
    model = MLP(
        in_features=test.input_shape[0], num_classes=test.num_classes,
        hidden=(16,), rng=np.random.default_rng(1),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    fields = make_error_fields(quantized.num_weights, 8, 3, seed=9)
    chip = ChipProfile(rows=128, columns=64, column_alignment=0.4, seed=4)

    def build():
        spec = SweepSpec(test, batch_size=32)
        spec.add_model("m", model, quantizer, quantized)
        spec.add_field_set("f", fields)
        spec.add_chip("c", chip)
        for rate in (0.005, 0.01, 0.02):
            spec.add_field_jobs("m", "f", rate)
        spec.add_chip_jobs("m", "c", 0.02, offsets=(0, 500, 1000))
        return spec

    return build


def test_group_jobs_partitions_by_granularity_and_dedupes(grid):
    spec = grid()
    groups = group_jobs(spec.jobs)
    # 1 clean group + 3 field-rate groups (batched injection per cell) +
    # 3 chip groups (one per offset — offsets share no work, so they shard).
    assert len(groups) == 7
    assert all(len({j.group_key for j in g}) == 1 for g in groups)
    field_groups = [g for g in groups if g[0].kind == "field"]
    assert all(len(g) == 3 for g in field_groups)  # whole chip set together
    chip_groups = [g for g in groups if g[0].kind == "chip"]
    assert [len(g) for g in chip_groups] == [1, 1, 1]
    # Duplicated jobs (same content key) collapse into one execution.
    assert group_jobs(spec.jobs + spec.jobs) == groups


@pytest.mark.slow
def test_parallel_executor_matches_serial_cell_for_cell(grid):
    serial = run_sweep(grid(), executor=SerialExecutor())
    parallel = run_sweep(grid(), executor=ParallelExecutor(max_workers=2))
    assert set(serial) == set(parallel)
    for key, cell in serial.items():
        # Same fixed seed + same shipped context: every cell is equal, not
        # merely close.
        assert parallel[key].error == cell.error
        assert parallel[key].confidence == cell.confidence


def test_single_worker_short_circuits_without_a_pool(grid, monkeypatch):
    def forbid_pool(*args, **kwargs):  # pragma: no cover - would fail the test
        raise AssertionError("a pool must not be created for max_workers=1")

    import multiprocessing

    monkeypatch.setattr(multiprocessing, "get_context", forbid_pool)
    results = run_sweep(grid(), executor=ParallelExecutor(max_workers=1))
    assert results == run_sweep(grid(), executor=SerialExecutor())


def test_unavailable_pool_degrades_to_serial(grid, monkeypatch):
    import multiprocessing

    def broken_context(*args, **kwargs):
        raise OSError("no POSIX semaphores on this host")

    monkeypatch.setattr(multiprocessing, "get_context", broken_context)
    results = run_sweep(grid(), executor=ParallelExecutor(max_workers=4))
    assert results == run_sweep(grid(), executor=SerialExecutor())


def test_parallel_executor_validates_workers():
    with pytest.raises(ValueError, match="max_workers"):
        ParallelExecutor(max_workers=0)


def test_executor_context_ships_once_per_worker(grid):
    """Tasks carry only job lists; the context travels via the initializer."""
    spec = grid()
    shipped = []

    class RecordingPoolExecutor:
        """Runs the worker protocol in-process to observe the payloads."""

        def run(self, context, groups):
            shipped.append(context)
            executors_module._init_worker(context)
            return [executors_module._run_group_in_worker(g) for g in groups]

    results = run_sweep(spec, executor=RecordingPoolExecutor())
    assert len(shipped) == 1  # one context shipment for many groups
    assert results == run_sweep(grid(), executor=SerialExecutor())


def test_invalid_start_method_raises_at_construction():
    with pytest.raises(ValueError, match="start_method"):
        ParallelExecutor(max_workers=2, start_method="forkserve")  # typo


@pytest.mark.parametrize("chunk_size", [1, 2, 3])
def test_chunked_injection_is_result_identical(grid, chunk_size):
    reference = run_sweep(grid(), executor=SerialExecutor())
    chunked = run_sweep(grid(), executor=SerialExecutor(chunk_size=chunk_size))
    assert chunked == reference


def test_chunk_size_threads_through_parallel_degradation(grid, monkeypatch):
    import multiprocessing

    def broken_context(*args, **kwargs):
        raise OSError("no POSIX semaphores on this host")

    monkeypatch.setattr(multiprocessing, "get_context", broken_context)
    chunked = run_sweep(grid(), executor=ParallelExecutor(max_workers=4, chunk_size=2))
    assert chunked == run_sweep(grid(), executor=SerialExecutor())


@pytest.mark.slow
def test_parallel_chunked_matches_serial(grid):
    parallel = run_sweep(
        grid(), executor=ParallelExecutor(max_workers=2, chunk_size=1)
    )
    assert parallel == run_sweep(grid(), executor=SerialExecutor())


def test_executor_chunk_size_validation():
    with pytest.raises(ValueError, match="chunk_size"):
        SerialExecutor(chunk_size=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ParallelExecutor(max_workers=2, chunk_size=0)


def test_model_entry_clean_weights_memoized_and_not_pickled(grid):
    import pickle

    spec = grid()
    entry = spec.models["m"]
    first = entry.clean_weights()
    assert entry.clean_weights() is first  # memoized per process
    for ours, reference in zip(first, entry.quantizer.dequantize(entry.quantized)):
        np.testing.assert_array_equal(ours, reference)
    shipped = pickle.loads(pickle.dumps(entry))
    assert shipped._clean_weights_cache is None  # decoded per worker, not shipped


def test_patcher_and_batch_plan_are_reused_across_groups(grid):
    """One DeltaWeightPatcher / BatchPlan pair per (model, process)."""
    spec = grid()
    context = spec.context()
    entry = context.models["m"]
    plan = context.batch_plan()
    patcher = entry.patcher()
    assert context.batch_plan() is plan
    assert entry.patcher() is patcher
    groups = group_jobs(spec.jobs)
    for group in groups:
        executors_module.execute_group(context, group)
    # Executing every group created no new plan or patcher.
    assert context.batch_plan() is plan
    assert entry.patcher() is patcher
    # Neither cache ships to workers.
    import pickle

    blob = pickle.loads(pickle.dumps(context))
    assert "_plan_cache" not in blob.__dict__
    assert blob.models["m"]._patcher_cache is None


@pytest.mark.slow
def test_pool_worker_death_mid_job_is_salvaged_bit_identically(grid, monkeypatch):
    """A pool worker SIGKILLed mid-job breaks the whole pool; the executor
    keeps clean-finished groups and retries the rest serially, so the sweep
    completes bit-identical to a clean run.  The fault schedule travels via
    the environment and is installed by pool workers only — the parent
    process (where the serial retry runs) never installs it."""
    from repro.faults import FAULTS_ENV, FaultPlan, FaultRule

    plan = FaultPlan([FaultRule(seam="execute", kind="sigkill", nth=1)])
    monkeypatch.setenv(FAULTS_ENV, plan.to_env()[FAULTS_ENV])
    results = run_sweep(grid(), executor=ParallelExecutor(max_workers=2))
    monkeypatch.delenv(FAULTS_ENV)
    serial = run_sweep(grid(), executor=SerialExecutor())
    assert results == serial  # equal, not merely close — nothing lost
