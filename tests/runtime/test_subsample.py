"""Tests for subsampled per-cell evaluation (``SweepSpec(subsample=n)``)."""

import numpy as np
import pytest

from repro.biterror import make_error_fields
from repro.eval.sweeps import rerr_sweep
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import SerialExecutor, SweepSpec, run_sweep, subsample_plan


@pytest.fixture(scope="module")
def resources(blob_data):
    _, test = blob_data
    model = MLP(
        in_features=test.input_shape[0], num_classes=test.num_classes,
        hidden=(16,), rng=np.random.default_rng(1),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    fields = make_error_fields(quantized.num_weights, 8, 3, seed=9)
    return test, model, quantizer, quantized, fields


def _spec(resources, subsample=None):
    test, model, quantizer, quantized, fields = resources
    spec = SweepSpec(test, batch_size=16, subsample=subsample)
    spec.add_model("m", model, quantizer, quantized)
    spec.add_field_set("f", fields)
    for rate in (0.01, 0.02):
        spec.add_field_jobs("m", "f", rate)
    return spec


def test_subsample_changes_content_keys_only_when_set(resources):
    full = _spec(resources)
    legacy = _spec(resources, subsample=None)
    sub8 = _spec(resources, subsample=8)
    sub16 = _spec(resources, subsample=16)
    assert [j.content_key for j in full.jobs] == [j.content_key for j in legacy.jobs]
    keys8 = {j.content_key for j in sub8.jobs}
    keys16 = {j.content_key for j in sub16.jobs}
    full_keys = {j.content_key for j in full.jobs}
    # Different subsample sizes can never alias each other or the full grid.
    assert not keys8 & keys16
    assert not keys8 & full_keys


def test_subsample_plans_are_reproducible_and_distinct_per_cell(resources):
    spec = _spec(resources, subsample=8)
    context = spec.context()
    jobs = [job for job in spec.jobs if job.kind == "field"]
    plan_a = subsample_plan(context, jobs[0])
    plan_b = subsample_plan(context, jobs[0])
    assert plan_a.num_examples == 8
    np.testing.assert_array_equal(plan_a.dataset.inputs, plan_b.dataset.inputs)
    np.testing.assert_array_equal(plan_a.dataset.labels, plan_b.dataset.labels)
    # Distinct cells draw their own subsets (derived seeds never collide).
    others = [subsample_plan(context, job) for job in jobs[1:4]]
    assert any(
        not np.array_equal(plan_a.dataset.inputs, other.dataset.inputs)
        for other in others
    )
    # Indices are sorted and unique (dataset-order subsets).
    seeds = {job.derived_seed for job in spec.jobs}
    assert len(seeds) == len(spec.jobs)


def test_subsample_at_or_above_dataset_size_degrades_to_full_plan(resources):
    test = resources[0]
    spec = _spec(resources, subsample=len(test) + 5)
    context = spec.context()
    plan = subsample_plan(context, spec.jobs[0])
    assert plan is context.batch_plan()  # the memoized full-dataset plan
    assert plan.num_examples == len(test)


def test_subsampled_sweep_runs_and_is_deterministic(resources):
    first = run_sweep(_spec(resources, subsample=10), executor=SerialExecutor())
    second = run_sweep(_spec(resources, subsample=10), executor=SerialExecutor())
    assert first == second
    full = run_sweep(_spec(resources), executor=SerialExecutor())
    # Errors are plausible error rates, computed over 10 examples each.
    assert all(
        cell.error * 10 == round(cell.error * 10) for cell in first.values()
    )
    assert set(first) != set(full)  # different cache keyspace


def test_rerr_sweep_forwards_subsample(resources):
    test, model, quantizer, quantized, fields = resources
    curve = rerr_sweep(
        model, quantizer, test, rates=[0.0, 0.01], error_fields=fields,
        quantized=quantized, batch_size=16, subsample=6,
    )
    assert len(curve.results) == 2
    for result in curve.results:
        for error in result.errors:
            assert abs(error * 6 - round(error * 6)) < 1e-9


def test_subsample_validation(resources):
    test = resources[0]
    with pytest.raises(ValueError, match="subsample"):
        SweepSpec(test, batch_size=8, subsample=0)
