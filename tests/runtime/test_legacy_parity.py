"""Engine results must be bit-identical to the pre-engine reference loops.

These tests re-implement the ad-hoc sweep loops the engine replaced (the
exact code that shipped before the runtime subsystem) and assert **exact**
float equality against the engine-routed drivers on fixed seeds — not
closeness.  Serial execution is the reference semantics; any divergence is a
correctness bug, not noise.
"""

import numpy as np
import pytest

from repro.biterror import ChipProfile, make_error_fields
from repro.core import Trainer, TrainerConfig
from repro.eval import (
    compare_models,
    evaluate_profiled_error,
    evaluate_robust_error,
    profiled_sweep,
    rerr_sweep,
)
from repro.eval.robust_error import RobustErrorResult, model_error_and_confidence
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    Trainer(model, quantizer, TrainerConfig(epochs=8, batch_size=16, seed=1)).train(train)
    return model, quantizer


def legacy_rerr_sweep(model, quantizer, dataset, rates, error_fields, batch_size=64):
    """The pre-engine rerr_sweep loop (PR-1 hoisting, serial per-rate calls)."""
    quantized = quantize_model(model, quantizer)
    clean_weights = quantizer.dequantize(quantized)
    clean_stats = model_error_and_confidence(model, clean_weights, dataset, batch_size)
    return [
        evaluate_robust_error(
            model, quantizer, dataset, rate,
            error_fields=error_fields, batch_size=batch_size,
            quantized=quantized, clean_stats=clean_stats,
        )
        for rate in rates
    ]


def legacy_profiled_error(
    model, quantizer, dataset, chip, rate, offsets, batch_size=64
):
    """The pre-engine evaluate_profiled_error body, verbatim."""
    quantized = quantize_model(model, quantizer)
    clean_weights = quantizer.dequantize(quantized)
    clean_error, clean_confidence = model_error_and_confidence(
        model, clean_weights, dataset, batch_size
    )
    result = RobustErrorResult(
        bit_error_rate=rate, clean_error=clean_error, confidence_clean=clean_confidence
    )
    perturbed_confidences = []
    for offset in offsets:
        corrupted = chip.apply_to_quantized(quantized, rate, offset=offset)
        weights = quantizer.dequantize(corrupted)
        error, confidence = model_error_and_confidence(
            model, weights, dataset, batch_size
        )
        result.errors.append(error)
        perturbed_confidences.append(confidence)
    result.confidence_perturbed = float(np.mean(perturbed_confidences))
    return result


def assert_results_identical(a: RobustErrorResult, b: RobustErrorResult):
    assert a.errors == b.errors  # exact — same floats, same order
    assert a.clean_error == b.clean_error
    assert a.confidence_clean == b.confidence_clean
    assert a.confidence_perturbed == b.confidence_perturbed
    assert a.bit_error_rate == b.bit_error_rate


def test_rerr_sweep_is_bit_identical_to_legacy_loop(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rates = [0.0, 0.005, 0.01, 0.03]
    fields = make_error_fields(model.num_parameters(), 8, 4, seed=13)
    legacy = legacy_rerr_sweep(model, quantizer, test, rates, fields)
    curve = rerr_sweep(model, quantizer, test, rates, error_fields=fields)
    assert curve.rates == rates
    for ours, reference in zip(curve.results, legacy):
        assert_results_identical(ours, reference)


def test_rerr_sweep_duplicate_rates_match_legacy(trained, blob_data):
    """Duplicate grid entries are deduplicated in execution, not in output."""
    _, test = blob_data
    model, quantizer = trained
    rates = [0.01, 0.01, 0.02]
    fields = make_error_fields(model.num_parameters(), 8, 3, seed=17)
    legacy = legacy_rerr_sweep(model, quantizer, test, rates, fields)
    curve = rerr_sweep(model, quantizer, test, rates, error_fields=fields)
    assert len(curve.results) == 3
    for ours, reference in zip(curve.results, legacy):
        assert_results_identical(ours, reference)


def test_evaluate_profiled_error_is_bit_identical_to_legacy(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    chip = ChipProfile(rows=256, columns=64, column_alignment=0.5, seed=9)
    offsets = (0, 1000, 5000)
    for rate in (0.0, 0.01, 0.03):
        legacy = legacy_profiled_error(model, quantizer, test, chip, rate, offsets)
        ours = evaluate_profiled_error(
            model, quantizer, test, chip, rate, offsets=offsets
        )
        assert_results_identical(ours, legacy)


def test_profiled_sweep_matches_per_rate_evaluations(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    chip = ChipProfile(rows=128, columns=64, seed=3)
    rates = [0.0, 0.02]
    offsets = (0, 2000)
    curve = profiled_sweep(model, quantizer, test, chip, rates, offsets=offsets)
    assert curve.rates == rates and curve.offsets == [0, 2000]
    for rate, ours in zip(rates, curve.results):
        legacy = legacy_profiled_error(model, quantizer, test, chip, rate, offsets)
        assert_results_identical(ours, legacy)


def test_compare_models_is_bit_identical_to_per_model_sweeps(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rates = [0.0, 0.01]
    curves = compare_models(
        {"a": (model, quantizer), "b": (model, quantizer)}, test, rates,
        num_fields=3, seed=5,
    )
    # The legacy protocol: fields per precision with seed `seed + precision`.
    fields = make_error_fields(
        model.num_parameters(), 8, 3, seed=5 + quantizer.precision
    )
    reference = legacy_rerr_sweep(model, quantizer, test, rates, fields)
    for name in ("a", "b"):
        for ours, ref in zip(curves[name].results, reference):
            assert_results_identical(ours, ref)
