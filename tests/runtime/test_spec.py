"""Tests for SweepSpec / EvalJob content keys and job enumeration."""

import numpy as np
import pytest

from repro.biterror import ChipProfile, make_error_fields
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import SweepSpec, chip_digest, field_digest, model_digest


@pytest.fixture()
def setup(blob_data):
    train, test = blob_data
    model = MLP(
        in_features=test.input_shape[0], num_classes=test.num_classes,
        hidden=(16,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    return model, quantizer, quantized, test


def build_spec(setup, seed=3):
    model, quantizer, quantized, test = setup
    fields = make_error_fields(quantized.num_weights, 8, 3, seed=seed)
    spec = SweepSpec(test, batch_size=32)
    spec.add_model("m", model, quantizer, quantized)
    spec.add_field_set("f", fields)
    spec.add_field_jobs("m", "f", 0.01)
    return spec


def test_content_keys_are_stable_across_builds(setup):
    a = build_spec(setup)
    b = build_spec(setup)
    assert [j.content_key for j in a.jobs] == [j.content_key for j in b.jobs]
    # ... and every job's derived seed follows the key deterministically.
    assert [j.derived_seed for j in a.jobs] == [j.derived_seed for j in b.jobs]
    assert all(0 <= j.derived_seed < 2**31 - 1 for j in a.jobs)


def test_content_keys_separate_cells(setup):
    spec = build_spec(setup)
    spec.add_field_jobs("m", "f", 0.02)
    keys = [j.content_key for j in spec.jobs]
    assert len(set(keys)) == len(keys)  # clean + 3 fields @ 0.01 + 3 @ 0.02


def test_content_keys_track_field_state_not_names(setup):
    """Two field sets with identical state produce identical job keys."""
    model, quantizer, quantized, test = setup
    fields_a = make_error_fields(quantized.num_weights, 8, 2, seed=5)
    fields_b = make_error_fields(quantized.num_weights, 8, 2, seed=5)
    spec = SweepSpec(test)
    spec.add_model("m", model, quantizer, quantized)
    spec.add_field_set("a", fields_a)
    spec.add_field_set("b", fields_b)
    jobs_a = spec.add_field_jobs("m", "a", 0.01)
    jobs_b = spec.add_field_jobs("m", "b", 0.01)
    assert [j.content_key for j in jobs_a] == [j.content_key for j in jobs_b]
    different = make_error_fields(quantized.num_weights, 8, 2, seed=6)
    spec.add_field_set("c", different)
    jobs_c = spec.add_field_jobs("m", "c", 0.01)
    assert set(j.content_key for j in jobs_c).isdisjoint(
        j.content_key for j in jobs_a
    )


def test_zero_rate_adds_no_field_jobs_and_duplicates_are_idempotent(setup):
    spec = build_spec(setup)
    before = spec.num_jobs
    assert spec.add_field_jobs("m", "f", 0.0) == []
    again = spec.add_field_jobs("m", "f", 0.01)
    assert spec.num_jobs == before
    assert [j.content_key for j in again] == [
        j.content_key for j in spec.cell_jobs("m", "field", "f", 0.01)
    ]


def test_clean_job_and_precomputed_clean_stats(setup):
    model, quantizer, quantized, test = setup
    spec = SweepSpec(test)
    spec.add_model("with_clean", model, quantizer, quantized)
    assert spec.clean_job("with_clean") is not None
    spec2 = SweepSpec(test)
    spec2.add_model(
        "precomputed", model, quantizer, quantized, clean_stats=(0.25, 0.9)
    )
    assert spec2.clean_job("precomputed") is None
    assert spec2.models["precomputed"].clean_stats == (0.25, 0.9)
    assert spec2.num_jobs == 0


def test_chip_jobs_cover_offsets(setup):
    model, quantizer, quantized, test = setup
    chip = ChipProfile(rows=64, columns=32, seed=2)
    spec = SweepSpec(test)
    spec.add_model("m", model, quantizer, quantized)
    spec.add_chip("c", chip)
    jobs = spec.add_chip_jobs("m", "c", 0.02, offsets=(0, 100, 200))
    assert [j.offset for j in jobs] == [0, 100, 200]
    assert len({j.content_key for j in jobs}) == 3
    # Zero-rate chip jobs execute (stuck-at cells read back the payload).
    assert len(spec.add_chip_jobs("m", "c", 0.0, offsets=(0,))) == 1


def test_duplicate_registration_rejected(setup):
    model, quantizer, quantized, test = setup
    spec = SweepSpec(test)
    spec.add_model("m", model, quantizer, quantized)
    with pytest.raises(ValueError, match="duplicate model"):
        spec.add_model("m", model, quantizer, quantized)
    fields = make_error_fields(quantized.num_weights, 8, 1, seed=0)
    spec.add_field_set("f", fields)
    with pytest.raises(ValueError, match="duplicate field-set"):
        spec.add_field_set("f", fields)
    chip = ChipProfile(rows=16, columns=16, seed=0)
    spec.add_chip("c", chip)
    with pytest.raises(ValueError, match="duplicate chip"):
        spec.add_chip("c", chip)
    with pytest.raises(ValueError, match="batch_size"):
        SweepSpec(test, batch_size=0)


def test_digests_distinguish_backends_and_state(setup):
    model, quantizer, quantized, test = setup
    dense = make_error_fields(quantized.num_weights, 8, 1, seed=1)[0]
    sparse = make_error_fields(
        quantized.num_weights, 8, 1, seed=1, backend="sparse"
    )[0]
    assert field_digest(dense) != field_digest(sparse)
    chip_a = ChipProfile(rows=32, columns=16, seed=1)
    chip_b = ChipProfile(rows=32, columns=16, seed=2)
    chip_a_sparse = ChipProfile(rows=32, columns=16, seed=1, backend="sparse")
    assert chip_digest(chip_a) != chip_digest(chip_b)
    assert chip_digest(chip_a) != chip_digest(chip_a_sparse)
    # The model digest tracks the quantized codes.
    other = quantizer.quantize(
        [c.astype(np.float64) + 1.0 for c in quantized.codes]
    )
    assert model_digest(model, quantized) != model_digest(model, other)


def test_model_digest_tracks_forward_hyperparameters(setup):
    """Same layer types + same weights but different config must not collide."""
    _, quantizer, _, test = setup
    from repro.nn.pooling import MaxPool2d

    rng_a, rng_b = np.random.default_rng(7), np.random.default_rng(7)
    # Identical weights, same module types — only a scalar hyperparameter
    # differs; a digest collision here would serve stale cached results.
    from repro.models import MLP as _MLP

    a = _MLP(in_features=6, num_classes=3, hidden=(8,), rng=rng_a)
    b = _MLP(in_features=6, num_classes=3, hidden=(8,), rng=rng_b)
    qa = quantizer.quantize([p.data for p in a.parameters()])
    assert model_digest(a, qa) == model_digest(b, qa)
    pool_a, pool_b = MaxPool2d(kernel_size=2), MaxPool2d(kernel_size=3)
    assert _config_differs(pool_a, pool_b)
    # Attach the differently-configured module as a submodule.
    a.pool = pool_a
    b.pool = pool_b
    assert model_digest(a, qa) != model_digest(b, qa)


def _config_differs(mod_a, mod_b):
    from repro.runtime.spec import _module_config

    return _module_config(mod_a) != _module_config(mod_b)


def test_add_chip_jobs_rejects_conflicting_offsets(setup):
    model, quantizer, quantized, test = setup
    chip = ChipProfile(rows=32, columns=32, seed=5)
    spec = SweepSpec(test)
    spec.add_model("m", model, quantizer, quantized)
    spec.add_chip("c", chip)
    spec.add_chip_jobs("m", "c", 0.02, offsets=(0, 100))
    # Same offsets: idempotent.
    assert len(spec.add_chip_jobs("m", "c", 0.02, offsets=(0, 100))) == 2
    with pytest.raises(ValueError, match="offsets"):
        spec.add_chip_jobs("m", "c", 0.02, offsets=(0, 100, 200))


def test_content_keys_include_engine_schema_version(setup, monkeypatch):
    """Semantic changes bump the schema version, invalidating warm stores."""
    import repro.runtime.spec as spec_module

    before = [j.content_key for j in build_spec(setup).jobs]
    monkeypatch.setattr(spec_module, "ENGINE_SCHEMA_VERSION", 2)
    after = [j.content_key for j in build_spec(setup).jobs]
    assert set(before).isdisjoint(after)
