"""Cluster-side telemetry: manifest propagation, worker spans, status --json.

The invariant at the heart of this file: **each execution of a work item
produces exactly one ``worker.item`` span** — claim through complete,
whether or not the completion rename wins.  A lost lease therefore shows up
as one span per *executing* worker (plus a ``worker.lost_leases`` counter
on the loser), never zero and never two from the same worker.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import telemetry
from repro.cluster import JobQueue, merge_shards, submit_spec, worker_loop
from repro.cluster.cli import main as cluster_main, run_status
from repro.cluster.queue import DONE, LEASED
from repro.telemetry.report import load_run_records, merged_run_metrics


@pytest.fixture(autouse=True)
def no_recorder_leaks():
    telemetry.disable()
    yield
    telemetry.disable()


def worker_item_spans(run_dir):
    return [
        r for r in load_run_records(run_dir)
        if r.get("type") == "span" and r.get("name") == "worker.item"
    ]


def test_manifest_flag_makes_workers_record_their_own_sinks(grid, tmp_path):
    run_dir = str(tmp_path)
    with telemetry.recording(run_dir, name="submitter", echo=None):
        submission = submit_spec(run_dir, grid(), lease_timeout=600.0)
    # The submission recorded the manifest flag; this worker starts with no
    # recorder of its own and must auto-configure from it.
    assert not telemetry.enabled()
    stats = worker_loop(run_dir, worker_id="w1", lease_timeout=600.0)
    assert not telemetry.enabled()  # the worker-owned recorder was torn down
    assert stats.items == len(submission.enqueued)

    spans = worker_item_spans(run_dir)
    assert len(spans) == len(submission.enqueued)
    assert {s["sink"] for s in spans} == {"worker-w1"}
    assert all(s["completed"] is True and s["cells"] >= 1 for s in spans)
    merged = merged_run_metrics(run_dir)
    assert merged["counters"]["worker.items"] == stats.items
    assert merged["counters"]["queue.claims"] == stats.items
    assert merged["counters"].get("worker.lost_leases", 0) == 0


def test_exactly_one_worker_span_per_execution_across_a_lost_lease(grid, tmp_path):
    run_dir = str(tmp_path)
    with telemetry.recording(run_dir, name="submitter", echo=None):
        submission = submit_spec(run_dir, grid(), lease_timeout=600.0)
    items = len(submission.enqueued)
    queue = JobQueue(run_dir, lease_timeout=600.0)

    # Worker A executes one item whose lease force-expires mid-execution:
    # its completion rename must fail, its span must still be recorded.
    original_complete = JobQueue.complete
    expired = {}

    def expire_then_complete(self, item_id):
        if not expired:
            expired[item_id] = True
            self.requeue_expired(now=time.time() + 1200.0)
        return original_complete(self, item_id)

    JobQueue.complete = expire_then_complete
    try:
        slow = worker_loop(run_dir, worker_id="slow", lease_timeout=600.0,
                           max_items=1)
    finally:
        JobQueue.complete = original_complete
    assert slow.lost_leases == 1
    (lost_item,) = expired

    # Worker B re-executes the requeued item (and everything else).
    fast = worker_loop(run_dir, worker_id="fast", lease_timeout=600.0)
    assert queue.is_drained()
    assert fast.lost_leases == 0

    spans = worker_item_spans(run_dir)
    # items + 1 executions happened: the lost item ran on both workers.
    assert len(spans) == items + 1
    by_pair = {(s["sink"], s["item"]) for s in spans}
    assert len(by_pair) == len(spans)  # never two spans from one worker
    lost_spans = [s for s in spans if s["item"] == lost_item]
    assert sorted(s["completed"] for s in lost_spans) == [False, True]
    merged = merged_run_metrics(run_dir)
    assert merged["counters"]["worker.lost_leases"] == 1
    assert merged["counters"]["queue.leases_lost"] == 1
    assert merged["counters"]["queue.requeued_expired"] == 1
    assert merged["counters"]["worker.items"] == items + 1


def test_caller_installed_recorder_wins_over_the_manifest_flag(grid, tmp_path):
    run_dir = str(tmp_path / "run")
    with telemetry.recording(run_dir, name="submitter", echo=None):
        submit_spec(run_dir, grid(), lease_timeout=600.0)
    with telemetry.recording(str(tmp_path / "own"), name="mine", echo=None) as rec:
        worker_loop(run_dir, worker_id="w1", lease_timeout=600.0)
        assert telemetry.get_recorder() is rec  # not replaced mid-loop
    # Every worker span landed in the caller's sink, not the run dir's.
    assert {s["sink"] for s in worker_item_spans(str(tmp_path / "own"))} == {"mine"}


def test_status_json_surfaces_queue_results_and_lease_counters(grid, tmp_path, capsys):
    run_dir = str(tmp_path)
    with telemetry.recording(run_dir, name="submitter", echo=None):
        submit_spec(run_dir, grid(), lease_timeout=600.0)
    worker_loop(run_dir, worker_id="w1", lease_timeout=600.0)
    merge_shards(run_dir)

    status = run_status(run_dir)
    assert status["complete"] is True
    assert status["stored"] == status["expected"] > 0
    assert status["queue"][LEASED] == 0 and status["queue"][DONE] > 0
    assert status["lost_leases"] == 0
    assert status["telemetry"]["worker.items"] == status["queue"][DONE]

    assert cluster_main(["status", run_dir, "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["complete"] is True
    assert parsed["telemetry"]["worker.cells"] == parsed["stored"]

    # The text rendering surfaces the lease counters when telemetry exists.
    assert cluster_main(["status", run_dir]) == 0
    text = capsys.readouterr().out
    assert "leases: 0 lost, 0 expired requeued" in text


def test_status_works_without_any_telemetry(grid, tmp_path, capsys):
    run_dir = str(tmp_path)
    submit_spec(run_dir, grid(), lease_timeout=600.0)
    worker_loop(run_dir, worker_id="w1", lease_timeout=600.0)
    merge_shards(run_dir)
    status = run_status(run_dir)
    assert status["telemetry"] is None
    assert status["complete"] is True
    assert cluster_main(["status", run_dir]) == 0
    assert "leases:" not in capsys.readouterr().out
