"""Tests for the claim-by-rename leased job queue.

The whole matrix runs once per registered queue backend — the ``kv``
blob-store protocol must honor every lease/retry/fence invariant the
``filesystem`` rename protocol does.
"""

import time

import pytest

from repro.cluster import JobQueue, RetryPolicy

BACKENDS = ["filesystem", "kv"]


@pytest.fixture(params=BACKENDS)
def queue(tmp_path, request):
    return JobQueue(str(tmp_path), lease_timeout=0.2, backend=request.param)


@pytest.fixture(params=BACKENDS)
def retry_queue(tmp_path, request):
    """A queue with a tight, deterministic retry budget and no backoff wait."""
    policy = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)
    return JobQueue(
        str(tmp_path), lease_timeout=0.2, retry=policy, backend=request.param
    )


def test_enqueue_claim_complete_lifecycle(queue):
    assert queue.enqueue("a", {"item": "a", "jobs": []})
    assert queue.counts() == {"pending": 1, "leased": 0, "done": 0, "failed": 0}
    item = queue.claim("w1")
    assert item is not None and item.item_id == "a"
    # The claim stamps the attempt count and fence epoch into the payload.
    assert item.payload == {"item": "a", "jobs": [], "attempt": 1, "fence": 1}
    assert item.attempt == 1
    assert item.fence == 1
    assert queue.counts() == {"pending": 0, "leased": 1, "done": 0, "failed": 0}
    assert not queue.is_drained()
    assert queue.complete("a")
    assert queue.counts() == {"pending": 0, "leased": 0, "done": 1, "failed": 0}
    assert queue.is_drained()


def test_enqueue_is_idempotent_across_states(queue):
    assert queue.enqueue("a", {"jobs": []})
    assert not queue.enqueue("a", {"jobs": ["other"]})  # pending: kept as-is
    item = queue.claim("w")
    assert not queue.enqueue("a", {"jobs": []})  # leased
    queue.complete(item.item_id)
    assert not queue.enqueue("a", {"jobs": []})  # done
    assert queue.counts()["done"] == 1


def test_each_item_claimed_exactly_once(queue):
    for index in range(8):
        queue.enqueue(f"item-{index}", {"jobs": []})
    claimed = []
    while True:
        item = queue.claim("w")
        if item is None:
            break
        claimed.append(item.item_id)
    assert sorted(claimed) == [f"item-{i}" for i in range(8)]
    assert queue.claim("w") is None  # nothing claimable twice


def test_requeue_expired_returns_stale_leases(queue):
    queue.enqueue("a", {"jobs": []})
    queue.enqueue("b", {"jobs": []})
    first = queue.claim("w1")
    assert queue.requeue_expired() == []  # fresh lease stays leased
    # Age the lease past the timeout and requeue it.
    assert queue.requeue_expired(now=time.time() + 1.0) == [first.item_id]
    assert queue.counts() == {"pending": 2, "leased": 0, "done": 0, "failed": 0}
    # The requeued item is claimable again.
    again = {queue.claim("w2").item_id, queue.claim("w2").item_id}
    assert first.item_id in again


def test_heartbeat_extends_the_lease(queue):
    queue.enqueue("a", {"jobs": []})
    queue.claim("w1")
    later = time.time() + 1.0
    assert queue.heartbeat("a")
    queue.backend.touch("leased", "a", ts=later)  # simulate a future heartbeat
    assert queue.requeue_expired(now=later + 0.1) == []  # heartbeat counted


def test_complete_after_lost_lease_reports_failure(queue):
    queue.enqueue("a", {"jobs": []})
    queue.claim("w1")
    queue.requeue_expired(now=time.time() + 1.0)  # lease expires
    other = queue.claim("w2")  # another worker takes over
    assert other.item_id == "a"
    # The original worker finishes late: its complete must fail, not clobber.
    queue.release(other.item_id)
    queue.claim("w2")
    assert queue.complete("a")
    assert not queue.complete("a")  # second completion finds nothing


def test_release_and_requeue_done(queue):
    queue.enqueue("a", {"jobs": []})
    queue.claim("w")
    assert queue.release("a")
    assert queue.counts()["pending"] == 1
    queue.claim("w")
    queue.complete("a")
    assert queue.requeue_done("a")
    assert queue.counts() == {"pending": 1, "leased": 0, "done": 0, "failed": 0}


def test_lease_timeout_validation(tmp_path):
    with pytest.raises(ValueError, match="lease_timeout"):
        JobQueue(str(tmp_path), lease_timeout=0.0)


# -- retries and dead-lettering -----------------------------------------------


def _fail(retry_queue, item, exc_type="ValueError", message="boom"):
    return retry_queue.nack(
        item,
        {"exc_type": exc_type, "message": message, "traceback": "tb"},
        worker="w1",
    )


def test_nack_retries_until_the_budget_then_dead_letters(retry_queue):
    retry_queue.enqueue("a", {"item": "a", "jobs": []})
    for attempt in (1, 2):
        item = retry_queue.claim("w1")
        assert item.attempt == attempt
        assert _fail(retry_queue, item) == "retry"
        assert retry_queue.counts()["pending"] == 1
    item = retry_queue.claim("w1")
    assert item.attempt == 3
    assert _fail(retry_queue, item) == "failed"
    assert retry_queue.counts() == {
        "pending": 0, "leased": 0, "done": 0, "failed": 1,
    }
    assert retry_queue.is_drained()  # dead letters never block drain
    assert retry_queue.claim("w1") is None


def test_failure_record_carries_traceback_and_history(retry_queue):
    retry_queue.enqueue("a", {"item": "a", "jobs": []})
    for _ in range(3):
        _fail(retry_queue, retry_queue.claim("w1"))
    assert retry_queue.failed_ids() == ["a"]
    record = retry_queue.failure_record("a")
    failure = record["failure"]
    assert failure["exc_type"] == "ValueError"
    assert failure["message"] == "boom"
    assert failure["traceback"] == "tb"
    assert failure["worker"] == "w1"
    assert failure["attempts"] == 3
    history = record["history"]
    assert [entry["attempt"] for entry in history] == [1, 2, 3]
    assert all(entry["exc_type"] == "ValueError" for entry in history)


@pytest.mark.parametrize("backend", BACKENDS)
def test_retry_after_defers_the_claim(tmp_path, backend):
    policy = RetryPolicy(max_attempts=3, backoff_base=30.0, jitter=0.0)
    queue = JobQueue(str(tmp_path), lease_timeout=0.2, retry=policy, backend=backend)
    queue.enqueue("a", {"item": "a", "jobs": []})
    item = queue.claim("w1")
    assert queue.nack(item, {"exc_type": "E", "message": "m"}, worker="w1") == "retry"
    # Backing off: pending but not claimable until retry_after passes.
    assert queue.counts()["pending"] == 1
    assert queue.claim("w1") is None
    assert queue.counts()["pending"] == 1  # deferral returned it untouched


def test_crash_loop_is_dead_lettered_at_claim(retry_queue):
    """Workers that crash without nacking burn one attempt per claim; the
    claim after the budget dead-letters instead of feeding a fourth worker."""
    retry_queue.enqueue("a", {"item": "a", "jobs": []})
    for _ in range(3):
        assert retry_queue.claim("w1") is not None  # claimed, then "crashed"
        retry_queue.requeue_expired(now=time.time() + 1.0)
    assert retry_queue.claim("w1") is None
    assert retry_queue.failed_ids() == ["a"]
    failure = retry_queue.failure_record("a")["failure"]
    assert failure["exc_type"] == "WorkerCrashLoop"
    assert failure["attempts"] == 3


def test_retry_failed_requeues_with_fresh_budget(retry_queue):
    retry_queue.enqueue("a", {"item": "a", "jobs": []})
    retry_queue.enqueue("b", {"item": "b", "jobs": []})
    for _ in range(3):
        items = [retry_queue.claim("w1"), retry_queue.claim("w1")]
        for item in items:
            if item is not None:
                _fail(retry_queue, item)
    assert sorted(retry_queue.failed_ids()) == ["a", "b"]
    assert retry_queue.retry_failed(item_ids=["a"]) == ["a"]
    assert retry_queue.counts()["pending"] == 1
    assert retry_queue.counts()["failed"] == 1
    item = retry_queue.claim("w1")
    assert item.item_id == "a"
    assert item.attempt == 1  # fresh budget
    assert "failure" not in item.payload
    assert len(item.payload["history"]) == 3  # the past is kept
    assert retry_queue.retry_failed() == ["b"]  # default: everything failed


def test_enqueue_does_not_resurrect_dead_letters(retry_queue):
    retry_queue.enqueue("a", {"item": "a", "jobs": []})
    for _ in range(3):
        _fail(retry_queue, retry_queue.claim("w1"))
    assert not retry_queue.enqueue("a", {"item": "a", "jobs": []})
    assert retry_queue.failed_ids() == ["a"]


def test_attempts_histogram(retry_queue):
    retry_queue.enqueue("a", {"item": "a", "jobs": []})
    retry_queue.enqueue("b", {"item": "b", "jobs": []})
    item = retry_queue.claim("w1")
    retry_queue.complete(item.item_id)
    histogram = retry_queue.attempts_histogram()
    assert histogram == {0: 1, 1: 1}  # one unclaimed, one first-try


def test_retry_policy_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(
        max_attempts=5, backoff_base=0.5, backoff_factor=2.0,
        backoff_max=3.0, jitter=0.5,
    )
    delays = [policy.delay(attempt, token="item-x") for attempt in (1, 2, 3, 4)]
    assert delays == [policy.delay(a, token="item-x") for a in (1, 2, 3, 4)]
    for attempt, delay in enumerate(delays, start=1):
        ceiling = min(0.5 * 2.0 ** (attempt - 1), 3.0)
        assert 0.5 * ceiling <= delay <= ceiling
    # Different items jitter differently (decorrelated fleets).
    assert policy.delay(1, token="item-x") != policy.delay(1, token="item-y")


def test_retry_policy_manifest_round_trip():
    policy = RetryPolicy(max_attempts=7, backoff_base=0.1, jitter=0.25)
    assert RetryPolicy.from_manifest(policy.to_manifest()) == policy
    assert RetryPolicy.from_manifest(None) == RetryPolicy()
    assert RetryPolicy.from_manifest({"max_attempts": 2, "junk": 9}) == RetryPolicy(
        max_attempts=2
    )
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
