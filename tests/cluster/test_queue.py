"""Tests for the claim-by-rename leased job queue."""

import os
import time

import pytest

from repro.cluster import JobQueue


@pytest.fixture
def queue(tmp_path):
    return JobQueue(str(tmp_path), lease_timeout=0.2)


def test_enqueue_claim_complete_lifecycle(queue):
    assert queue.enqueue("a", {"item": "a", "jobs": []})
    assert queue.counts() == {"pending": 1, "leased": 0, "done": 0}
    item = queue.claim("w1")
    assert item is not None and item.item_id == "a"
    assert item.payload == {"item": "a", "jobs": []}
    assert queue.counts() == {"pending": 0, "leased": 1, "done": 0}
    assert not queue.is_drained()
    assert queue.complete("a")
    assert queue.counts() == {"pending": 0, "leased": 0, "done": 1}
    assert queue.is_drained()


def test_enqueue_is_idempotent_across_states(queue):
    assert queue.enqueue("a", {"jobs": []})
    assert not queue.enqueue("a", {"jobs": ["other"]})  # pending: kept as-is
    item = queue.claim("w")
    assert not queue.enqueue("a", {"jobs": []})  # leased
    queue.complete(item.item_id)
    assert not queue.enqueue("a", {"jobs": []})  # done
    assert queue.counts()["done"] == 1


def test_each_item_claimed_exactly_once(queue):
    for index in range(8):
        queue.enqueue(f"item-{index}", {"jobs": []})
    claimed = []
    while True:
        item = queue.claim("w")
        if item is None:
            break
        claimed.append(item.item_id)
    assert sorted(claimed) == [f"item-{i}" for i in range(8)]
    assert queue.claim("w") is None  # nothing claimable twice


def test_requeue_expired_returns_stale_leases(queue):
    queue.enqueue("a", {"jobs": []})
    queue.enqueue("b", {"jobs": []})
    first = queue.claim("w1")
    assert queue.requeue_expired() == []  # fresh lease stays leased
    # Age the lease past the timeout and requeue it.
    assert queue.requeue_expired(now=time.time() + 1.0) == [first.item_id]
    assert queue.counts() == {"pending": 2, "leased": 0, "done": 0}
    # The requeued item is claimable again.
    again = {queue.claim("w2").item_id, queue.claim("w2").item_id}
    assert first.item_id in again


def test_heartbeat_extends_the_lease(queue):
    queue.enqueue("a", {"jobs": []})
    queue.claim("w1")
    later = time.time() + 1.0
    assert queue.heartbeat("a")
    os.utime(os.path.join(queue.queue_dir, "leased", "a.json"), (later, later))
    assert queue.requeue_expired(now=later + 0.1) == []  # heartbeat counted


def test_complete_after_lost_lease_reports_failure(queue):
    queue.enqueue("a", {"jobs": []})
    queue.claim("w1")
    queue.requeue_expired(now=time.time() + 1.0)  # lease expires
    other = queue.claim("w2")  # another worker takes over
    assert other.item_id == "a"
    # The original worker finishes late: its complete must fail, not clobber.
    queue.release(other.item_id)
    queue.claim("w2")
    assert queue.complete("a")
    assert not queue.complete("a")  # second completion finds nothing


def test_release_and_requeue_done(queue):
    queue.enqueue("a", {"jobs": []})
    queue.claim("w")
    assert queue.release("a")
    assert queue.counts()["pending"] == 1
    queue.claim("w")
    queue.complete("a")
    assert queue.requeue_done("a")
    assert queue.counts() == {"pending": 1, "leased": 0, "done": 0}


def test_lease_timeout_validation(tmp_path):
    with pytest.raises(ValueError, match="lease_timeout"):
        JobQueue(str(tmp_path), lease_timeout=0.0)
