"""Tests for shard merging, log compaction and run-directory gc."""

import json
import os

from repro.cluster import (
    JobQueue,
    ShardTail,
    compact_results,
    gc_run_dir,
    merge_shards,
)
from repro.runtime import ResultStore
from repro.utils.serialization import append_jsonl


def _shard(run_dir, name, records):
    path = os.path.join(run_dir, "shards", f"worker-{name}.jsonl")
    append_jsonl(path, records)
    return path


def _cell(key, error, worker="w", **extra):
    record = {"key": key, "error": error, "confidence": 0.5, "worker": worker}
    record.update(extra)
    return record


def test_merge_is_idempotent_under_reruns(tmp_path):
    run_dir = str(tmp_path)
    _shard(run_dir, "a", [_cell("k1", 0.1), _cell("k2", 0.2)])
    first = merge_shards(run_dir)
    assert (first.merged, first.duplicates) == (2, 0)
    second = merge_shards(run_dir)
    assert (second.merged, second.duplicates) == (0, 2)
    # The canonical log did not grow on the second pass.
    with open(os.path.join(run_dir, "results.jsonl")) as handle:
        assert len(handle.readlines()) == 2
    store = ResultStore(run_dir)
    assert store.get("k1").error == 0.1 and store.get("k2").error == 0.2


def test_merge_dedupes_across_shards_and_keeps_metadata(tmp_path):
    run_dir = str(tmp_path)
    # Two workers executed the same requeued group: same keys, same results.
    _shard(run_dir, "a", [_cell("k1", 0.1, worker="a", kind="field", rate=0.01)])
    _shard(run_dir, "b", [_cell("k1", 0.1, worker="b"), _cell("k2", 0.2, worker="b")])
    stats = merge_shards(run_dir)
    assert stats.merged == 2 and stats.duplicates == 1
    with open(os.path.join(run_dir, "results.jsonl")) as handle:
        records = [json.loads(line) for line in handle]
    by_key = {record["key"]: record for record in records}
    assert len(by_key) == 2
    assert by_key["k1"]["kind"] == "field"  # worker annotations survive
    assert by_key["k1"]["rate"] == 0.01


def test_merge_skips_malformed_records(tmp_path):
    run_dir = str(tmp_path)
    path = _shard(run_dir, "a", [_cell("k1", 0.1)])
    with open(path, "a") as handle:
        handle.write('{"key": "k2", "error": "truncat')  # interrupted append
    stats = merge_shards(run_dir)
    assert stats.merged == 1


def test_shard_tail_reads_incrementally_and_tolerates_partial_lines(tmp_path):
    path = str(tmp_path / "shard.jsonl")
    tail = ShardTail(path)
    assert tail.read_new() == []  # missing file
    with open(path, "w") as handle:
        handle.write(json.dumps({"key": "k1"}) + "\n")
        handle.write('{"key": "k2"')  # writer mid-append
    assert [r["key"] for r in tail.read_new()] == ["k1"]
    assert tail.read_new() == []  # partial line not consumed
    with open(path, "a") as handle:
        handle.write(', "error": 0.5}\n')
    assert [r["key"] for r in tail.read_new()] == ["k2"]  # whole record now


def test_compact_drops_duplicates_and_malformed(tmp_path):
    run_dir = str(tmp_path)
    path = os.path.join(run_dir, "results.jsonl")
    append_jsonl(path, [_cell("k1", 0.1), _cell("k2", 0.2), _cell("k1", 0.9)])
    with open(path, "a") as handle:
        handle.write("not json at all\n")
    stats = compact_results(run_dir)
    assert stats.lines_before == 4 and stats.lines_after == 2
    assert stats.duplicates_dropped == 1 and stats.malformed_dropped == 1
    store = ResultStore(run_dir)
    assert store.get("k1").error == 0.1  # first record wins, as on load
    # Compacting an already-compact log is a no-op.
    again = compact_results(run_dir)
    assert again.lines_before == again.lines_after == 2


def test_compact_missing_log_is_a_noop(tmp_path):
    stats = compact_results(str(tmp_path))
    assert stats.lines_before == 0 and stats.lines_after == 0


def test_gc_merges_then_collects_debris(tmp_path):
    run_dir = str(tmp_path)
    queue = JobQueue(run_dir)
    queue.enqueue("a", {"jobs": []})
    item = queue.claim("w")
    queue.complete(item.item_id)
    _shard(run_dir, "w", [_cell("k1", 0.1)])
    os.makedirs(os.path.join(run_dir, "workers"), exist_ok=True)
    with open(os.path.join(run_dir, "workers", "w"), "w") as handle:
        handle.write("1\n")
    stats = gc_run_dir(run_dir, worker_ttl=0.0)
    assert stats.merge.merged == 1  # merged before anything was removed
    assert stats.done_items_removed == 1
    assert stats.shards_removed == 1
    assert stats.beacons_removed == 1
    assert ResultStore(run_dir).get("k1") is not None  # results survive gc
    # Pending work is never collected.
    queue.enqueue("b", {"jobs": []})
    gc_run_dir(run_dir, worker_ttl=0.0)
    assert queue.counts()["pending"] == 1


def test_gc_keeps_shards_of_live_workers(tmp_path):
    run_dir = str(tmp_path)
    path = _shard(run_dir, "w", [_cell("k1", 0.1)])
    os.makedirs(os.path.join(run_dir, "workers"), exist_ok=True)
    with open(os.path.join(run_dir, "workers", "w"), "w") as handle:
        handle.write("1\n")  # fresh beacon: the worker is alive
    stats = gc_run_dir(run_dir, worker_ttl=300.0)
    assert stats.shards_removed == 0
    assert os.path.exists(path)


def test_shard_tail_counts_torn_terminated_lines(tmp_path):
    """A malformed line that *is* newline-terminated (a writer died and a
    later append supplied the newline) is unrecoverable: the tail skips it,
    keeps reading past it, and counts it as torn."""
    from repro import telemetry

    path = str(tmp_path / "shard.jsonl")
    with open(path, "w") as handle:
        handle.write(json.dumps({"key": "k1"}) + "\n")
        handle.write('{"key": "k2", "error": 0.\n')  # torn, then terminated
        handle.write(json.dumps({"key": "k3"}) + "\n")
    tail = ShardTail(path)
    with telemetry.recording(str(tmp_path), name="tail", echo=None):
        assert [r["key"] for r in tail.read_new()] == ["k1", "k3"]
    from repro.telemetry.report import merged_run_metrics

    assert merged_run_metrics(str(tmp_path))["counters"]["io.torn_lines"] == 1
