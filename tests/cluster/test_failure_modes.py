"""Cluster failure modes: crashed workers, lease recovery, exactly-once results.

The headline guarantee under test: a worker SIGKILLed mid-group (lease held,
no results written) never loses or duplicates a cell — lease expiry requeues
its group, a surviving worker re-executes it, and the content-keyed merge
keeps the canonical results complete and duplicate-free.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cluster import (
    ClusterExecutor,
    JobQueue,
    merge_shards,
    submit_spec,
    worker_loop,
)
from repro.cluster.worker import CRASH_AFTER_CLAIM_ENV
from repro.runtime import ResultStore, SerialExecutor, run_sweep


def _spawn_worker(run_dir, worker_id, crash_after_claim=None):
    """Start a real worker subprocess (optionally primed to SIGKILL itself)."""
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    if crash_after_claim is not None:
        env[CRASH_AFTER_CLAIM_ENV] = str(crash_after_claim)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cluster", "worker", run_dir,
         "--id", worker_id, "--poll", "0.05"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _results_keys(run_dir):
    from repro.utils.serialization import read_jsonl

    path = os.path.join(run_dir, "results.jsonl")
    return [record["key"] for record in read_jsonl(path)]


@pytest.mark.slow
def test_sigkill_mid_group_loses_and_duplicates_nothing(grid, tmp_path):
    """The ISSUE's crash-recovery criterion, end to end with real processes."""
    run_dir = str(tmp_path)
    spec = grid()
    submission = submit_spec(run_dir, spec, lease_timeout=1.0)
    assert submission.enqueued

    crashy = _spawn_worker(run_dir, "crashy", crash_after_claim=1)
    crashy.wait(timeout=60)
    assert crashy.returncode == -9  # died by its own SIGKILL, mid-group
    queue = JobQueue(run_dir, lease_timeout=1.0)
    assert len(queue.leased_ids()) == 1  # the orphaned lease
    time.sleep(1.1)  # let it expire

    # A healthy worker requeues the orphan and finishes everything.
    stats = worker_loop(run_dir, worker_id="healthy", lease_timeout=1.0)
    assert stats.requeued >= 1
    assert queue.is_drained()
    merge_shards(run_dir)

    serial = run_sweep(grid(), executor=SerialExecutor())
    store = ResultStore(run_dir)
    expected = {job.content_key for job in spec.jobs}
    # Complete: every cell present and bit-identical to the serial run.
    assert all(store.get(key) == cell for key, cell in serial.items())
    # Duplicate-free: one canonical line per content key, nothing missing.
    keys = _results_keys(run_dir)
    assert set(keys) == expected
    assert len(keys) == len(expected)


@pytest.mark.slow
def test_late_finisher_after_lease_loss_only_adds_dedupable_records(grid, tmp_path):
    """A slow worker that finishes after losing its lease cannot corrupt state."""
    run_dir = str(tmp_path)
    spec = grid()
    submit_spec(run_dir, spec, lease_timeout=600.0)
    queue = JobQueue(run_dir, lease_timeout=600.0)

    # Worker A claims an item but "stalls" (we simulate by claiming inline).
    item = queue.claim("slow")
    # Its lease force-expires (e.g. an operator requeues a stuck run).
    assert queue.requeue_expired(now=time.time() + 1200.0) == [item.item_id]
    # Worker B executes everything, including the requeued item.
    worker_loop(run_dir, worker_id="fast", lease_timeout=600.0)
    assert queue.is_drained()
    # Worker A now finishes late: completion fails, results only re-merge.
    assert not queue.complete(item.item_id)
    merge_shards(run_dir)
    merge_shards(run_dir)  # idempotent under re-runs
    serial = run_sweep(grid(), executor=SerialExecutor())
    store = ResultStore(run_dir)
    assert all(store.get(key) == cell for key, cell in serial.items())
    keys = _results_keys(run_dir)
    assert len(keys) == len(set(keys))


@pytest.mark.slow
def test_spawned_daemons_complete_a_sweep_bit_identically(grid, tmp_path):
    """The coordinator's daemon path: 2 local workers, exact serial parity."""
    executor = ClusterExecutor(
        run_dir=str(tmp_path),
        max_workers=2,
        lease_timeout=10.0,
        poll_interval=0.02,
    )
    results = run_sweep(grid(), executor=executor)
    serial = run_sweep(grid(), executor=SerialExecutor())
    assert set(results) == set(serial)
    for key, cell in serial.items():
        assert results[key] == cell  # equal, not merely close


@pytest.mark.slow
def test_coordinator_survives_a_crashing_daemon_fleet(grid, tmp_path, monkeypatch):
    """Every spawned daemon dies after one claim; the sweep still completes.

    The env hook is honoured by the daemon CLI only, so the daemons (and
    their respawned replacements) keep SIGKILLing themselves until the
    restart budget runs out and the coordinator finishes in-process.
    """
    monkeypatch.setenv(CRASH_AFTER_CLAIM_ENV, "1")  # inherited by daemons
    executor = ClusterExecutor(
        run_dir=str(tmp_path),
        max_workers=2,
        lease_timeout=1.0,
        poll_interval=0.02,
        stall_timeout=2.0,
    )
    results = run_sweep(grid(), executor=executor)
    serial = run_sweep(grid(), executor=SerialExecutor())
    assert results == serial
    keys = _results_keys(str(tmp_path))
    assert len(keys) == len(set(keys))  # recovery introduced no duplicates
