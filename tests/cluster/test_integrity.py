"""The verify/repair audit: every check detects, repair restores clean.

The synthetic tests build a run directory by hand and seed one instance of
every corruption class the verifier knows, so detection is asserted per
check (not "something was found").  The end-to-end test proves a real
cluster run verifies clean, and the repair tests pin the two contracts the
ISSUE names: repair restores a verify-clean state, and it never touches an
intact record (byte-for-byte).
"""

import json
import os
import shutil
import time

import pytest

from repro.cluster import (
    JobQueue,
    QUARANTINE_FILENAME,
    RetryPolicy,
    merge_shards,
    repair_run_dir,
    submit_spec,
    verify_run_dir,
    worker_loop,
)
from repro.utils.serialization import append_jsonl, jsonl_line, read_jsonl

LEASE = 60.0


def _shard_record(key, worker="w1", item="item-a", fence=1):
    return {
        "key": key, "error": 0.1, "confidence": 0.9,
        "worker": worker, "item": item, "fence": fence,
    }


def _store_record(key, worker="w1", item="item-a"):
    # Canonical records carry provenance but (deliberately) no fence.
    return {
        "key": key, "error": 0.1, "confidence": 0.9,
        "worker": worker, "item": item,
    }


@pytest.fixture
def clean_run(tmp_path):
    """A hand-built quiesced run dir: item-a completed at fence 2 (one
    release along the way), item-b at fence 1, matching shard + store."""
    run_dir = str(tmp_path)
    queue = JobQueue(run_dir, lease_timeout=LEASE)
    os.makedirs(os.path.join(run_dir, "shards"))
    queue.enqueue("item-a", {"item": "item-a", "jobs": []})
    assert queue.claim("w0").fence == 1
    queue.release("item-a")
    assert queue.claim("w1").fence == 2
    queue.complete("item-a")
    queue.enqueue("item-b", {"item": "item-b", "jobs": []})
    queue.claim("w1")
    queue.complete("item-b")
    shard = os.path.join(run_dir, "shards", "worker-w1.jsonl")
    append_jsonl(shard, [
        _shard_record("a1", item="item-a", fence=2),
        _shard_record("b1", item="item-b", fence=1),
    ], checksum=True)
    append_jsonl(os.path.join(run_dir, "results.jsonl"), [
        _store_record("a1", item="item-a"),
        _store_record("b1", item="item-b"),
    ], checksum=True)
    return run_dir, queue, shard


def _corrupt(line):
    """An intact checksummed line with its body flipped: parses, fails."""
    tampered = line.replace('"error": 0.1', '"error": 0.5')
    assert tampered != line
    return tampered


def _seed_corruptions(run_dir, queue, shard, duplicate_item=True):
    """One instance of every corruption class; returns expected counts."""
    store = os.path.join(run_dir, "results.jsonl")
    with open(shard, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-shar')  # killed writer
        handle.write("\n")
        handle.write(_corrupt(jsonl_line(_shard_record("c1"), checksum=True)))
        # A zombie's post-lease-loss publishes: fence 1 < item-a's epoch 2.
        handle.write(jsonl_line(
            _shard_record("z1", worker="zombie", fence=1), checksum=True))
        handle.write(jsonl_line(
            _shard_record("z2", worker="zombie", fence=1), checksum=True))
    with open(store, "a", encoding="utf-8") as handle:
        handle.write('{"key": "torn-stor')
        handle.write("\n")
        handle.write(_corrupt(jsonl_line(_store_record("c2"), checksum=True)))
        handle.write(jsonl_line(_store_record("a1"), checksum=True))  # dup
        handle.write(jsonl_line(
            _store_record("p1", item="item-p"), checksum=True))  # dead letter
        # A stale-fenced shard line that slipped into the canonical store:
        # its provenance traces back to zombie fence 1.
        handle.write(jsonl_line(
            _store_record("z2", worker="zombie"), checksum=True))
    # Dead-letter item-p so its key p1 counts as leaked.
    dl_queue = JobQueue(
        run_dir, lease_timeout=LEASE,
        retry=RetryPolicy(max_attempts=1, backoff_base=0.0, jitter=0.0),
    )
    dl_queue.enqueue("item-p", {"item": "item-p",
                                "jobs": [{"content_key": "p1"}]})
    item = dl_queue.claim("w1")
    assert dl_queue.nack(item, {"exc_type": "Boom"}, worker="w1") == "failed"
    # An orphaned lease (stale past the timeout, never requeued) ...
    queue.enqueue("item-o", {"item": "item-o", "jobs": []})
    queue.claim("w1")
    old = time.time() - 10 * LEASE
    os.utime(queue._path("leased", "item-o"), (old, old))
    # ... and a lease heartbeaten into the future by a skewed clock.
    queue.enqueue("item-s", {"item": "item-s", "jobs": []})
    queue.claim("w1")
    future = time.time() + 10 * LEASE
    os.utime(queue._path("leased", "item-s"), (future, future))
    expected = {
        "queue.orphan_lease": 1,
        "queue.clock_skew": 1,
        "shard.torn_line": 1,
        "shard.corrupt_line": 1,
        "shard.stale_fence": 2,
        "store.torn_line": 1,
        "store.corrupt_line": 1,
        "store.duplicate_key": 1,
        "store.dead_letter_leak": 1,
        "store.fence_leak": 1,
    }
    if duplicate_item:
        # The same item id in two state directories (a restored backup).
        shutil.copyfile(
            queue._path("done", "item-b"),
            queue._path("pending", "item-b"),
        )
        expected["queue.duplicate_item"] = 1
    return expected


def test_clean_run_dir_verifies_clean(clean_run):
    run_dir, _, _ = clean_run
    report = verify_run_dir(run_dir, lease_timeout=LEASE)
    assert report.clean, report.to_json()
    assert report.counts() == {}
    payload = report.to_json()
    assert payload["clean"] is True and payload["findings"] == []


def test_verify_detects_every_seeded_corruption_class(clean_run):
    run_dir, queue, shard = clean_run
    expected = _seed_corruptions(run_dir, queue, shard)
    report = verify_run_dir(run_dir, lease_timeout=LEASE)
    assert report.counts() == expected
    # Findings carry usable evidence, not just a class name.
    by_check = {f.check: f for f in report.findings}
    assert by_check["shard.stale_fence"].item == "item-a"
    assert by_check["shard.stale_fence"].worker == "zombie"
    assert by_check["store.dead_letter_leak"].key == "p1"
    assert by_check["store.fence_leak"].key == "z2"
    assert by_check["queue.orphan_lease"].item == "item-o"
    assert by_check["queue.clock_skew"].item == "item-s"
    assert by_check["store.duplicate_key"].key == "a1"
    # to_json round-trips through plain JSON (the CI artifact format).
    assert json.loads(json.dumps(report.to_json()))["counts"] == expected


def test_verify_only_filters_to_named_checks_and_families(clean_run):
    run_dir, queue, shard = clean_run
    expected = _seed_corruptions(run_dir, queue, shard)

    exact = verify_run_dir(
        run_dir, lease_timeout=LEASE, only=["store.duplicate_key"]
    )
    assert exact.counts() == {"store.duplicate_key": 1}

    family = verify_run_dir(run_dir, lease_timeout=LEASE, only=["queue"])
    assert family.counts() == {
        check: count
        for check, count in expected.items()
        if check.startswith("queue.")
    }

    combined = verify_run_dir(
        run_dir, lease_timeout=LEASE, only=["shard", "store.torn_line"]
    )
    assert combined.counts() == {
        "shard.torn_line": 1,
        "shard.corrupt_line": 1,
        "shard.stale_fence": 2,
        "store.torn_line": 1,
    }
    # A filter matching nothing reports clean — the filter narrows the
    # report, never invents findings.
    assert verify_run_dir(run_dir, lease_timeout=LEASE, only=["nope"]).clean


def test_repair_dry_run_plans_everything_and_writes_nothing(clean_run):
    run_dir, queue, shard = clean_run
    store = os.path.join(run_dir, "results.jsonl")
    _seed_corruptions(run_dir, queue, shard, duplicate_item=False)
    with open(shard, encoding="utf-8") as handle:
        shard_before = handle.read()
    with open(store, encoding="utf-8") as handle:
        store_before = handle.read()
    report_before = verify_run_dir(run_dir, lease_timeout=LEASE)

    stats = repair_run_dir(run_dir, lease_timeout=LEASE, dry_run=True)
    assert stats.dry_run
    assert stats.changed  # "would change", counted exactly like a real run
    assert stats.leases_reset == 1
    assert stats.leases_requeued == 1
    assert stats.shard_lines_quarantined == 4
    assert stats.store_lines_quarantined == 5
    actions = sorted(p["action"] for p in stats.planned)
    assert actions == sorted(
        ["reset_lease", "requeue_lease"] + ["quarantine"] * 9
    )
    by_action = {p["action"]: p for p in stats.planned}
    assert by_action["reset_lease"]["item"] == "item-s"
    assert by_action["requeue_lease"]["item"] == "item-o"
    quarantines = [p for p in stats.planned if p["action"] == "quarantine"]
    assert all(p["source"] for p in quarantines)
    assert {p["reason"] for p in quarantines} == {
        "torn", "checksum", "fence_stale", "duplicate_key", "dead_letter",
    }

    # Nothing on disk moved: files, quarantine, queue and verdict are as
    # they were before the dry run.
    with open(shard, encoding="utf-8") as handle:
        assert handle.read() == shard_before
    with open(store, encoding="utf-8") as handle:
        assert handle.read() == store_before
    assert not os.path.exists(os.path.join(run_dir, QUARANTINE_FILENAME))
    after = verify_run_dir(run_dir, lease_timeout=LEASE)
    assert after.counts() == report_before.counts()
    # The real repair still works afterwards and does what the plan said.
    real = repair_run_dir(run_dir, lease_timeout=LEASE)
    assert not real.dry_run and real.changed
    assert verify_run_dir(run_dir, lease_timeout=LEASE).clean


def test_repair_dry_run_on_a_clean_run_dir_plans_nothing(clean_run):
    run_dir, _, _ = clean_run
    stats = repair_run_dir(run_dir, lease_timeout=LEASE, dry_run=True)
    assert stats.dry_run and not stats.changed and not stats.planned


def test_verify_only_and_repair_dry_run_cli(clean_run, capsys):
    from repro.cluster.cli import main as cluster_main

    run_dir, queue, shard = clean_run
    _seed_corruptions(run_dir, queue, shard, duplicate_item=False)

    code = cluster_main([
        "verify", run_dir, "--lease-timeout", str(LEASE),
        "--only", "store.duplicate_key", "--json",
    ])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["counts"] == {"store.duplicate_key": 1}

    code = cluster_main([
        "repair", run_dir, "--lease-timeout", str(LEASE), "--dry-run",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "dry run" in out and "would" in out
    assert "item-s" in out and "item-o" in out
    # Dry run wrote nothing: the damage still verifies dirty.
    assert cluster_main(["verify", run_dir,
                         "--lease-timeout", str(LEASE)]) == 1
    capsys.readouterr()


def test_repair_restores_verify_clean_without_touching_intact_records(
    clean_run,
):
    run_dir, queue, shard = clean_run
    store = os.path.join(run_dir, "results.jsonl")
    with open(shard, encoding="utf-8") as handle:
        intact_shard = handle.read()
    with open(store, encoding="utf-8") as handle:
        intact_store = handle.read()
    # duplicate_item is detect-only (no mechanical winner), so the
    # repair-to-clean contract is asserted over the other ten classes.
    _seed_corruptions(run_dir, queue, shard, duplicate_item=False)

    stats = repair_run_dir(run_dir, lease_timeout=LEASE)
    assert stats.changed
    assert stats.leases_reset == 1  # item-s stamped back to now
    assert stats.leases_requeued == 1  # item-o returned to pending
    assert stats.shard_lines_quarantined == 4  # torn, corrupt, z1, z2
    assert stats.store_lines_quarantined == 5  # torn, corrupt, dup, p1, z2
    assert verify_run_dir(run_dir, lease_timeout=LEASE).clean
    assert "item-o" in JobQueue(run_dir).pending_ids()

    # Intact lines survive byte-for-byte: repair only ever deletes.
    with open(shard, encoding="utf-8") as handle:
        assert handle.read() == intact_shard
    with open(store, encoding="utf-8") as handle:
        assert handle.read() == intact_store

    entries = read_jsonl(os.path.join(run_dir, QUARANTINE_FILENAME))
    reasons = sorted(entry["reason"] for entry in entries)
    assert reasons == sorted([
        "torn", "checksum", "fence_stale", "fence_stale",  # shard
        "torn", "checksum", "duplicate_key", "dead_letter", "fence_stale",
    ])
    # Undecodable lines keep their raw bytes; rejected records their JSON.
    raws = [entry for entry in entries if "raw" in entry]
    assert len(raws) == 4 and all("record" not in entry for entry in raws)
    zombies = [e for e in entries if e["reason"] == "fence_stale"
               and e["source"].startswith("shards/")]
    assert {e["record"]["key"] for e in zombies} == {"z1", "z2"}

    # Idempotent: a second pass finds nothing left to change.
    again = repair_run_dir(run_dir, lease_timeout=LEASE)
    assert not again.changed


def test_repair_is_a_noop_on_a_clean_run_dir(clean_run):
    run_dir, _, shard = clean_run
    store = os.path.join(run_dir, "results.jsonl")
    before = os.stat(store).st_mtime_ns, os.stat(shard).st_mtime_ns
    stats = repair_run_dir(run_dir, lease_timeout=LEASE)
    assert not stats.changed
    # Untouched means untouched: no rewrite of already-clean files.
    assert (os.stat(store).st_mtime_ns, os.stat(shard).st_mtime_ns) == before
    assert not os.path.exists(os.path.join(run_dir, QUARANTINE_FILENAME))


def test_verify_and_repair_cli_workflow(clean_run, capsys, tmp_path):
    from repro.cluster.cli import main as cluster_main

    run_dir, queue, shard = clean_run
    assert cluster_main(["verify", run_dir, "--lease-timeout", str(LEASE)]) == 0
    assert "clean" in capsys.readouterr().out

    _seed_corruptions(run_dir, queue, shard, duplicate_item=False)
    out_path = str(tmp_path / "artifacts" / "verify.json")
    os.makedirs(os.path.dirname(out_path))
    code = cluster_main([
        "verify", run_dir, "--lease-timeout", str(LEASE),
        "--json", "--out", out_path,
    ])
    assert code == 1
    stdout = capsys.readouterr().out
    assert json.loads(stdout)["clean"] is False
    with open(out_path, encoding="utf-8") as handle:
        artifact = json.load(handle)
    assert artifact["counts"]["shard.stale_fence"] == 2

    assert cluster_main(["repair", run_dir,
                         "--lease-timeout", str(LEASE)]) == 0
    out = capsys.readouterr().out
    assert "repair:" in out and "clean" in out
    assert cluster_main(["verify", run_dir,
                         "--lease-timeout", str(LEASE)]) == 0


def test_repair_cli_refuses_live_workers_without_force(clean_run, capsys):
    from repro.cluster.cli import main as cluster_main

    run_dir, _, _ = clean_run
    beacon_dir = os.path.join(run_dir, "workers")
    os.makedirs(beacon_dir, exist_ok=True)
    with open(os.path.join(beacon_dir, "busy"), "w", encoding="utf-8") as fh:
        fh.write("123\n")
    assert cluster_main(["repair", run_dir]) == 2
    assert "live worker" in capsys.readouterr().err
    assert cluster_main(["repair", run_dir, "--force",
                         "--lease-timeout", str(LEASE)]) == 0


def test_real_cluster_run_verifies_clean_end_to_end(grid, tmp_path):
    """The whole stack — fenced claims, checksummed publishes, guarded
    merge — leaves a run directory the auditor finds nothing wrong with."""
    run_dir = str(tmp_path)
    submit_spec(run_dir, grid())
    worker_loop(run_dir, worker_id="w1", poll_interval=0.01)
    merge_shards(run_dir)
    report = verify_run_dir(run_dir)
    assert report.clean, report.to_json()
    assert len(read_jsonl(os.path.join(run_dir, "results.jsonl"))) > 0
