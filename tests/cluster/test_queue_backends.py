"""Tests for the pluggable queue-backend seam and the kv reference store."""

import json
import os

import pytest

from repro.cluster import (
    DEFAULT_QUEUE_BACKEND,
    FilesystemQueueBackend,
    JobQueue,
    KVQueueBackend,
    LocalDirBlobStore,
    manifest_queue_backend,
    merge_shards,
    queue_backend_names,
    register_queue_backend,
    resolve_queue_backend,
    submit_spec,
    worker_loop,
)
from repro.cluster.backends import KV_DIRNAME
from repro.runtime import ResultStore, SerialExecutor, run_sweep


# -- LocalDirBlobStore: the precondition semantics the kv backend builds on --


@pytest.fixture
def store(tmp_path):
    return LocalDirBlobStore(str(tmp_path / "blobs"))


def test_blob_store_round_trip_and_overwrite(store):
    assert store.get("a/b.json") is None
    assert store.put("a/b.json", b"one")
    assert store.get("a/b.json") == b"one"
    assert store.put("a/b.json", b"two")  # unconditional put overwrites
    assert store.get("a/b.json") == b"two"


def test_blob_store_put_if_absent_decides_the_race(store):
    assert store.put("k", b"winner", if_absent=True)
    assert not store.put("k", b"loser", if_absent=True)
    assert store.get("k") == b"winner"  # the loser wrote nothing


def test_blob_store_delete_reports_precondition(store):
    store.put("k", b"x")
    assert store.delete("k")
    assert not store.delete("k")  # already gone
    assert store.get("k") is None


def test_blob_store_list_filters_prefix_and_temporaries(store):
    store.put("queue/pending/a.json", b"{}")
    store.put("queue/pending/b.json", b"{}")
    store.put("queue/done/c.json", b"{}")
    # In-flight temporaries from a crashed writer must not surface as keys.
    crash = os.path.join(store.root, "queue", "pending", "a.json.tmp-99-0~")
    with open(crash, "wb") as handle:
        handle.write(b"partial")
    assert store.list("queue/pending/") == [
        "queue/pending/a.json",
        "queue/pending/b.json",
    ]
    assert store.list() == [
        "queue/done/c.json",
        "queue/pending/a.json",
        "queue/pending/b.json",
    ]


def test_blob_store_rejects_escaping_keys(store):
    for bad in ("", "/abs", "../up", "a/../../b"):
        with pytest.raises(ValueError, match="invalid blob key"):
            store.put(bad, b"x")


# -- KVQueueBackend move protocol --------------------------------------------


def test_kv_move_commits_by_deleting_the_source(store):
    backend = KVQueueBackend(store)
    backend.write("pending", "a", {"item": "a"})
    assert backend.move("pending", "leased", "a")
    assert not backend.exists("pending", "a")
    assert backend.read("leased", "a") == {"item": "a"}


def test_kv_move_loses_when_destination_exists(store):
    backend = KVQueueBackend(store)
    backend.write("pending", "a", {"item": "a"})
    backend.write("leased", "a", {"item": "a", "fence": 9})
    assert not backend.move("pending", "leased", "a")
    # The loser left both documents untouched.
    assert backend.read("leased", "a") == {"item": "a", "fence": 9}
    assert backend.read("pending", "a") == {"item": "a"}


def test_kv_move_rolls_back_when_commit_loses(store, monkeypatch):
    """If the source delete loses (a concurrent mover committed first), the
    copied destination blob is rolled back so the item lands in one state."""
    backend = KVQueueBackend(store)
    backend.write("pending", "a", {"item": "a"})
    real_delete = store.delete

    def racing_delete(key):
        # The concurrent mover snatches the source just before our commit.
        if key.endswith("pending/a.json"):
            real_delete(key)  # simulate the rival's committed delete...
            return False  # ...so ours observes "already gone"
        return real_delete(key)

    monkeypatch.setattr(store, "delete", racing_delete)
    assert not backend.move("pending", "leased", "a")
    monkeypatch.undo()
    assert not backend.exists("leased", "a")  # rollback removed the copy


def test_kv_heartbeat_rides_inside_the_document(store):
    backend = KVQueueBackend(store)
    backend.write("leased", "a", {"item": "a"})
    first = backend.mtime("leased", "a")
    assert first is not None
    assert backend.touch("leased", "a", ts=first + 5.0)
    assert backend.mtime("leased", "a") == first + 5.0
    assert backend.read("leased", "a") == {"item": "a"}  # payload untouched
    assert not backend.touch("leased", "missing")
    assert backend.mtime("leased", "missing") is None


def test_kv_tolerates_undecodable_blobs(store):
    backend = KVQueueBackend(store)
    store.put("queue/pending/bad.json", b"\xff\xfe not json")
    assert backend.read("pending", "bad") is None
    assert backend.mtime("pending", "bad") is None
    assert not backend.touch("pending", "bad")


# -- registry and manifest resolution -----------------------------------------


def test_registry_knows_both_builtin_backends(tmp_path):
    names = queue_backend_names()
    assert "filesystem" in names and "kv" in names
    fs = resolve_queue_backend("filesystem", str(tmp_path))
    kv = resolve_queue_backend("kv", str(tmp_path))
    assert isinstance(fs, FilesystemQueueBackend)
    assert isinstance(kv, KVQueueBackend)
    assert fs.name == "filesystem" and kv.name == "kv"


def test_resolve_rejects_unknown_names_and_types(tmp_path):
    with pytest.raises(ValueError, match="unknown queue backend"):
        resolve_queue_backend("etcd", str(tmp_path))
    with pytest.raises(TypeError, match="backend must be"):
        resolve_queue_backend(42, str(tmp_path))


def test_register_queue_backend_round_trips(tmp_path):
    calls = []

    class Probe(FilesystemQueueBackend):
        name = "probe"

    def factory(run_dir):
        calls.append(run_dir)
        return Probe(run_dir)

    register_queue_backend("probe", factory)
    try:
        backend = resolve_queue_backend("probe", str(tmp_path))
        assert isinstance(backend, Probe)
        assert calls == [str(tmp_path)]
    finally:
        from repro.cluster.backends import QUEUE_BACKENDS

        QUEUE_BACKENDS.pop("probe", None)


def test_instance_passes_through_resolution(tmp_path):
    backend = KVQueueBackend(LocalDirBlobStore(str(tmp_path / "kv")))
    queue = JobQueue(str(tmp_path), backend=backend)
    assert queue.backend is backend


def test_manifest_resolution_defaults_to_filesystem(tmp_path):
    assert manifest_queue_backend(str(tmp_path)) == DEFAULT_QUEUE_BACKEND
    queue = JobQueue(str(tmp_path))  # no manifest yet → historical protocol
    assert isinstance(queue.backend, FilesystemQueueBackend)


def test_manifest_records_and_resolves_the_kv_backend(grid, tmp_path):
    run_dir = str(tmp_path)
    submission = submit_spec(run_dir, grid(), queue_backend="kv")
    assert submission.enqueued
    with open(os.path.join(run_dir, "manifest.json"), "r", encoding="utf-8") as f:
        assert json.load(f)["queue_backend"] == "kv"
    # A queue built from nothing but the run dir resolves the same backend,
    # and the kv layout holds the items (no filesystem queue/ tree needed).
    queue = JobQueue(run_dir)
    assert isinstance(queue.backend, KVQueueBackend)
    assert queue.counts()["pending"] == len(submission.enqueued)
    assert os.path.isdir(os.path.join(run_dir, KV_DIRNAME))


# -- end to end: the kv backend drains to serial-identical results ------------


def test_kv_backend_end_to_end_matches_serial(grid, tmp_path):
    run_dir = str(tmp_path)
    spec = grid()
    submission = submit_spec(run_dir, spec, queue_backend="kv")
    stats = worker_loop(run_dir, worker_id="w0")
    assert stats.items == len(submission.enqueued)
    assert JobQueue(run_dir).is_drained()
    merge_shards(run_dir)
    store = ResultStore(run_dir)
    serial = run_sweep(grid(), executor=SerialExecutor())
    assert all(store.get(key) == cell for key, cell in serial.items())
