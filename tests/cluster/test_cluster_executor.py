"""Tests for the broker, worker loop and ClusterExecutor (in-process paths).

Daemon-spawning end-to-end runs are exercised by
``tests/cluster/test_failure_modes.py`` (marked slow) and the cluster
benchmark; these tests drive the same protocol in-process so they stay fast
and deterministic.
"""

import os
import pickle

import pytest

from repro.cluster import (
    ClusterExecutor,
    JobQueue,
    group_item_id,
    merge_shards,
    prepare_run_dir,
    read_manifest,
    submit_spec,
    worker_loop,
)
from repro.runtime import (
    ResultStore,
    SerialExecutor,
    group_jobs,
    resolve_executor,
    run_sweep,
)


def test_submit_then_worker_loop_completes_the_sweep(grid, tmp_path):
    run_dir = str(tmp_path)
    spec = grid()
    submission = submit_spec(run_dir, spec)
    assert submission.enqueued and not submission.skipped
    stats = worker_loop(run_dir, worker_id="w0")
    assert stats.items == len(submission.enqueued)
    assert JobQueue(run_dir).is_drained()
    merge_shards(run_dir)
    store = ResultStore(run_dir)
    serial = run_sweep(grid(), executor=SerialExecutor())
    assert all(store.get(key) == cell for key, cell in serial.items())


def test_submission_is_idempotent_and_cache_aware(grid, tmp_path):
    run_dir = str(tmp_path)
    first = submit_spec(run_dir, grid())
    second = submit_spec(run_dir, grid())
    assert not second.enqueued
    assert set(second.skipped) == set(first.enqueued)
    worker_loop(run_dir, worker_id="w0")
    merge_shards(run_dir)
    # Every cell is stored now: resubmission enqueues nothing at all.
    warm = submit_spec(run_dir, grid())
    assert not warm.enqueued
    assert len(warm.cached_keys) == len({j.content_key for j in grid().jobs})


def test_prepare_refuses_conflicting_context_with_live_items(grid, tmp_path):
    run_dir = str(tmp_path)
    spec = grid()
    prepare_run_dir(run_dir, spec.context(), group_jobs(spec.jobs))
    other = grid()
    other.batch_size = 16  # different context bytes, same queue
    with pytest.raises(ValueError, match="different context"):
        prepare_run_dir(run_dir, other.context(), group_jobs(other.jobs))


def test_manifest_records_run_parameters(grid, tmp_path):
    run_dir = str(tmp_path)
    spec = grid()
    submission = submit_spec(run_dir, spec, chunk_size=2, lease_timeout=7.0)
    manifest = read_manifest(run_dir)
    assert manifest["chunk_size"] == 2
    assert manifest["lease_timeout"] == 7.0
    assert set(manifest["expected_keys"]) == {j.content_key for j in spec.jobs}
    assert set(submission.expected_keys) == set(manifest["expected_keys"])


def test_worker_shards_are_single_writer_and_durable(grid, tmp_path):
    run_dir = str(tmp_path)
    submit_spec(run_dir, grid())
    worker_loop(run_dir, worker_id="alpha", max_items=2)
    worker_loop(run_dir, worker_id="beta")
    shards = sorted(os.listdir(os.path.join(run_dir, "shards")))
    assert shards == ["worker-alpha.jsonl", "worker-beta.jsonl"]
    merge_shards(run_dir)
    serial = run_sweep(grid(), executor=SerialExecutor())
    store = ResultStore(run_dir)
    assert all(store.get(key) == cell for key, cell in serial.items())


def test_cluster_executor_inline_fallback_matches_serial(grid, tmp_path):
    """With spawning disabled and no workers, the coordinator self-serves."""
    executor = ClusterExecutor(
        run_dir=str(tmp_path),
        spawn_workers=False,
        lease_timeout=5.0,
        poll_interval=0.01,
        stall_timeout=0.0,  # no workers will ever come: fall back at once
    )
    results = run_sweep(grid(), executor=executor)
    assert results == run_sweep(grid(), executor=SerialExecutor())


def test_cluster_executor_resumes_from_warm_run_dir(grid, tmp_path):
    run_dir = str(tmp_path)
    executor = ClusterExecutor(
        run_dir=run_dir, spawn_workers=False, poll_interval=0.01, stall_timeout=0.0
    )
    first = run_sweep(grid(), executor=executor)
    # Warm store: the second run answers everything without queue traffic.
    again = ClusterExecutor(
        run_dir=run_dir, spawn_workers=False, poll_interval=0.01, stall_timeout=0.0
    )
    second = run_sweep(grid(), executor=again)
    assert second == first
    assert JobQueue(run_dir).counts()["pending"] == 0


def test_cluster_executor_streams_every_group_exactly_once(grid, tmp_path):
    spec = grid()
    groups = group_jobs(spec.jobs)
    executor = ClusterExecutor(
        run_dir=str(tmp_path), spawn_workers=False, poll_interval=0.01,
        stall_timeout=0.0,
    )
    outputs = list(executor.run(spec.context(), groups))
    assert len(outputs) == len(groups)
    yielded = [key for output in outputs for key, _ in output]
    assert sorted(yielded) == sorted(j.content_key for j in spec.jobs)
    # Item ids are deterministic, so the run is replayable/joinable.
    assert {group_item_id(g) for g in groups} == {
        group_item_id(g) for g in group_jobs(grid().jobs)
    }


def test_executor_registry_resolution():
    assert isinstance(resolve_executor(None), SerialExecutor)
    assert isinstance(resolve_executor("serial"), SerialExecutor)
    assert resolve_executor("parallel").max_workers >= 1
    assert isinstance(resolve_executor("cluster"), ClusterExecutor)
    sentinel = SerialExecutor()
    assert resolve_executor(sentinel) is sentinel
    with pytest.raises(ValueError, match="unknown executor"):
        resolve_executor("quantum")


def test_cluster_executor_validation():
    with pytest.raises(ValueError, match="max_workers"):
        ClusterExecutor(max_workers=0)
    with pytest.raises(ValueError, match="lease_timeout"):
        ClusterExecutor(lease_timeout=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ClusterExecutor(chunk_size=0)


def test_context_round_trips_through_pickle_without_caches(grid, tmp_path):
    spec = grid()
    context = spec.context()
    context.batch_plan()  # populate the process-local cache
    entry = context.models["m"]
    entry.patcher()
    blob = pickle.loads(pickle.dumps(context))
    assert "_plan_cache" not in blob.__dict__
    assert blob.models["m"]._patcher_cache is None
    assert blob.models["m"]._clean_weights_cache is None


def test_same_dir_store_and_executor_stay_duplicate_free(grid, tmp_path):
    """store=<run_dir> alongside ClusterExecutor(run_dir=<same>) — the
    documented resumable combination — must not double-write the log."""
    from repro.utils.serialization import read_jsonl

    run_dir = str(tmp_path)
    executor = ClusterExecutor(
        run_dir=run_dir, spawn_workers=False, poll_interval=0.01, stall_timeout=0.0
    )
    results = run_sweep(grid(), executor=executor, store=run_dir)
    keys = [r["key"] for r in read_jsonl(os.path.join(run_dir, "results.jsonl"))]
    assert sorted(keys) == sorted(results)  # one line per cell, no doubles
    # A store in a *different* directory is still written as usual.
    other_dir = str(tmp_path / "elsewhere")
    executor2 = ClusterExecutor(
        run_dir=str(tmp_path / "run2"), spawn_workers=False,
        poll_interval=0.01, stall_timeout=0.0,
    )
    run_sweep(grid(), executor=executor2, store=other_dir)
    assert len(ResultStore(other_dir)) == len(results)


def test_stall_detection_trusts_fresh_lease_heartbeats(grid, tmp_path):
    """A worker deep in a long group (stale beacon, fresh lease) keeps its
    claim: the coordinator must not declare the run stalled."""
    spec = grid()
    run_dir = str(tmp_path)
    submit_spec(run_dir, spec, lease_timeout=30.0)
    queue = JobQueue(run_dir, lease_timeout=30.0)
    item = queue.claim("busy-worker")  # lease just heartbeaten (claim touches)
    executor = ClusterExecutor(
        run_dir=run_dir, spawn_workers=False, poll_interval=0.01,
        lease_timeout=30.0, stall_timeout=0.0,
    )
    assert not executor._stalled(run_dir, queue, [], 0.0)
    # Once the lease goes protocol-stale, the stall may fire.
    leased = os.path.join(queue.queue_dir, "leased", item.item_id + ".json")
    old = 0.0
    os.utime(leased, (old, old))
    assert executor._stalled(run_dir, queue, [], 0.0)
