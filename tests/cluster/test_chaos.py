"""Deterministic chaos: seeded fault schedules over a real sweep.

The invariant every test here asserts, under different fault mixes:

* the sweep **terminates** (no hang, no crash-looping worker),
* every cell that was not deliberately poisoned merges **exactly** (bit
  parity with a clean serial run) and **duplicate-free**,
* the dead-letter set equals exactly the poisoned items, each with a
  readable failure record after exactly ``max_attempts`` attempts.

SIGKILL and torn-write fault kinds run only in subprocess workers — firing
them in-process would take the test runner down with them.  The in-process
tests therefore restrict themselves to ``exception`` and ``stall`` kinds.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro import faults
from repro.cluster import (
    ClusterExecutor,
    JobQueue,
    RetryPolicy,
    group_item_id,
    merge_shards,
    submit_spec,
    worker_loop,
)
from repro.faults import FaultPlan, FaultRule, InjectedFault
from repro.runtime import ResultStore, SerialExecutor, group_jobs, run_sweep


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    faults.clear()
    yield
    faults.clear()


NO_BACKOFF = RetryPolicy(max_attempts=3, backoff_base=0.0, jitter=0.0)


def _poison_target(spec):
    """(item_id, content_keys) of the first queue item of ``spec``."""
    group = group_jobs(spec.jobs)[0]
    return group_item_id(group), {job.content_key for job in group}


def _results_keys(run_dir):
    from repro.utils.serialization import parse_jsonl_line

    path = os.path.join(run_dir, "results.jsonl")
    with open(path) as handle:
        parsed = [parse_jsonl_line(line) for line in handle if line.strip()]
    assert all(status == "ok" for _, status in parsed)
    return [record["key"] for record, _ in parsed]


def _assert_survivors_exact(run_dir, serial, poison_keys):
    """Merged results: bit parity for every non-poisoned cell, no doubles,
    and nothing from a poisoned cell leaked into the canonical store."""
    merge_shards(run_dir)
    store = ResultStore(run_dir)
    for key, cell in serial.items():
        if key not in poison_keys:
            assert store.get(key) == cell  # equal, not merely close
    keys = _results_keys(run_dir)
    assert len(keys) == len(set(keys))
    assert set(keys) == set(serial) - poison_keys


def test_poisoned_item_dead_letters_and_the_rest_of_the_sweep_survives(
    grid, tmp_path
):
    """The ISSUE's acceptance criterion, in-process: one deterministically
    raising item dead-letters after exactly ``max_attempts`` attempts with a
    readable traceback; the worker loop survives and drains everything else."""
    run_dir = str(tmp_path)
    spec = grid()
    poison_id, poison_keys = _poison_target(spec)
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="exception", match=poison_id,
                   times=None, note="poison")]
    )
    submission = submit_spec(run_dir, spec, retry=NO_BACKOFF, fault_plan=plan)
    assert poison_id in submission.enqueued

    stats = worker_loop(run_dir, worker_id="chaos", poll_interval=0.01)
    assert faults.current() is None  # the manifest plan was uninstalled

    # Containment: the loop outlived every injected failure.
    assert stats.failures == NO_BACKOFF.max_attempts
    assert stats.dead_lettered == 1
    assert stats.items == len(submission.enqueued) - 1

    queue = JobQueue(run_dir)
    assert queue.is_drained()
    assert queue.failed_ids() == [poison_id]
    record = queue.failure_record(poison_id)
    failure = record["failure"]
    assert failure["exc_type"] == "InjectedFault"
    assert "InjectedFault" in failure["traceback"]
    assert failure["attempts"] == NO_BACKOFF.max_attempts
    assert [entry["attempt"] for entry in record["history"]] == [1, 2, 3]
    assert queue.attempts_histogram()[NO_BACKOFF.max_attempts] == 1

    serial = run_sweep(grid(), executor=SerialExecutor())
    _assert_survivors_exact(run_dir, serial, poison_keys)


def test_malloc_fault_is_contained_like_any_poisoned_attempt(grid, tmp_path):
    """An injected ``MemoryError`` at the execute seam must cost attempts,
    not the worker: the item dead-letters with ``exc_type == MemoryError``
    and every other cell still merges exactly."""
    run_dir = str(tmp_path)
    spec = grid()
    poison_id, poison_keys = _poison_target(spec)
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="malloc", match=poison_id,
                   times=None, note="allocation pressure")]
    )
    submission = submit_spec(run_dir, spec, retry=NO_BACKOFF, fault_plan=plan)

    stats = worker_loop(run_dir, worker_id="oom", poll_interval=0.01)
    assert stats.failures == NO_BACKOFF.max_attempts
    assert stats.dead_lettered == 1
    assert stats.items == len(submission.enqueued) - 1

    queue = JobQueue(run_dir)
    assert queue.is_drained()
    assert queue.failed_ids() == [poison_id]
    failure = queue.failure_record(poison_id)["failure"]
    assert failure["exc_type"] == "MemoryError"
    assert "MemoryError" in failure["traceback"]

    serial = run_sweep(grid(), executor=SerialExecutor())
    _assert_survivors_exact(run_dir, serial, poison_keys)


def test_cluster_executor_returns_partial_results_and_a_failure_report(
    grid, tmp_path
):
    """A poisoned run terminates with every survivable cell plus a
    :class:`FailureReport` naming the dead-lettered item and its cells."""
    spec = grid()
    poison_id, poison_keys = _poison_target(spec)
    retry = RetryPolicy(max_attempts=2, backoff_base=0.0, jitter=0.0)
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="exception", match=poison_id,
                   times=None, note="poison")]
    )
    executor = ClusterExecutor(
        run_dir=str(tmp_path), spawn_workers=False, poll_interval=0.01,
        stall_timeout=0.0, retry=retry, fault_plan=plan,
    )
    results = run_sweep(grid(), executor=executor)
    serial = run_sweep(grid(), executor=SerialExecutor())

    assert set(results) == set(serial) - poison_keys  # partial, not empty
    for key in results:
        assert results[key] == serial[key]

    report = executor.failure_report
    assert report  # truthy exactly when something dead-lettered
    assert report.items == [poison_id]
    assert set(report.keys) == poison_keys
    failure = report.failures[0].failure
    assert failure["exc_type"] == "InjectedFault"
    assert failure["attempts"] == retry.max_attempts
    assert poison_id in report.summary()


def test_seeded_chaos_schedule_preserves_the_core_invariant(grid, tmp_path):
    """A randomized (but seeded, hence replayable) schedule of transient
    faults plus one persistent poison: the sweep terminates, survivors are
    exact and duplicate-free, dead letters are exactly the poison."""
    run_dir = str(tmp_path)
    spec = grid()
    poison_id, poison_keys = _poison_target(spec)
    # Worst case every probabilistic firing lands on one unlucky item, so
    # its transient budget (times=3) must stay below max_attempts.
    retry = RetryPolicy(max_attempts=4, backoff_base=0.0, jitter=0.0)
    plan = FaultPlan(
        [
            FaultRule(seam="execute", kind="exception", match=poison_id,
                      times=None, note="poison"),
            FaultRule(seam="execute", kind="exception", p=0.35, times=3,
                      note="transient flake"),
            FaultRule(seam="publish", kind="stall", stall_s=0.02, times=2),
            FaultRule(seam="heartbeat", kind="stall", stall_s=0.01, times=2),
        ],
        seed=1234,
    )
    submission = submit_spec(run_dir, spec, retry=retry, fault_plan=plan)

    stats = worker_loop(run_dir, worker_id="chaos", poll_interval=0.01)
    queue = JobQueue(run_dir)
    assert queue.is_drained()  # terminated despite the weather
    assert stats.dead_lettered == 1
    assert queue.failed_ids() == [poison_id]
    failure = queue.failure_record(poison_id)["failure"]
    assert failure["exc_type"] == "InjectedFault"
    assert failure["attempts"] == retry.max_attempts

    serial = run_sweep(grid(), executor=SerialExecutor())
    _assert_survivors_exact(run_dir, serial, poison_keys)
    # The coin flips are seed-deterministic per (item, visit) — proven in
    # tests/faults — but the queue's claim shuffle makes the interleaving
    # (hence the exact attempt histogram) run-specific.  What must replay is
    # the *invariant*: a rerun of the same schedule converges identically.
    rerun_dir = str(tmp_path / "rerun")
    submit_spec(rerun_dir, grid(), retry=retry, fault_plan=plan)
    worker_loop(rerun_dir, worker_id="chaos", poll_interval=0.01)
    rerun_queue = JobQueue(rerun_dir)
    assert rerun_queue.is_drained()
    assert rerun_queue.failed_ids() == [poison_id]
    _assert_survivors_exact(rerun_dir, serial, poison_keys)


def _spawn_worker_with_env(run_dir, worker_id, extra_env):
    import repro

    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env)
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cluster", "worker", run_dir,
         "--id", worker_id, "--poll", "0.05"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.mark.slow
def test_torn_shard_write_is_skipped_counted_and_healed(grid, tmp_path):
    """A worker SIGKILLed halfway through a shard append leaves a torn final
    line; the merge skips it, a healthy worker re-executes the group, and
    the canonical store ends complete, exact and duplicate-free."""
    run_dir = str(tmp_path)
    spec = grid()
    submit_spec(run_dir, spec, lease_timeout=1.0)

    # The torn-write plan travels via the environment to this worker only —
    # the manifest stays clean so the healing worker runs fault-free.
    plan = FaultPlan([FaultRule(seam="publish", kind="torn_write", nth=1)])
    torn = _spawn_worker_with_env(run_dir, "torn", plan.to_env())
    torn.wait(timeout=60)
    assert torn.returncode == -9  # died mid-append, by design

    shard = os.path.join(run_dir, "shards", "worker-torn.jsonl")
    with open(shard, encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    with pytest.raises(json.JSONDecodeError):
        json.loads(lines[-1])  # the final line really is torn

    queue = JobQueue(run_dir, lease_timeout=1.0)
    assert len(queue.leased_ids()) == 1  # the orphaned lease
    time.sleep(1.1)
    stats = worker_loop(run_dir, worker_id="healer", lease_timeout=1.0)
    assert stats.requeued >= 1
    assert queue.is_drained()
    assert queue.failed_ids() == []  # a crash is not a dead letter

    serial = run_sweep(grid(), executor=SerialExecutor())
    _assert_survivors_exact(run_dir, serial, poison_keys=set())


@pytest.mark.slow
def test_daemon_fleet_with_injected_exceptions_converges(grid, tmp_path):
    """The full daemon path under a manifest-propagated schedule: spawned
    workers inherit the plan, contain the poison, and the coordinator
    degrades gracefully to partial results plus a failure report."""
    spec = grid()
    poison_id, poison_keys = _poison_target(spec)
    retry = RetryPolicy(max_attempts=2, backoff_base=0.05, backoff_max=0.1)
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="exception", match=poison_id,
                   times=None, note="poison")]
    )
    executor = ClusterExecutor(
        run_dir=str(tmp_path), max_workers=2, lease_timeout=10.0,
        poll_interval=0.02, retry=retry, fault_plan=plan,
    )
    results = run_sweep(grid(), executor=executor)
    serial = run_sweep(grid(), executor=SerialExecutor())
    assert set(results) == set(serial) - poison_keys
    for key in results:
        assert results[key] == serial[key]
    report = executor.failure_report
    assert report and report.items == [poison_id]
    assert report.failures[0].failure["exc_type"] == "InjectedFault"


def test_status_and_retry_failed_cli_drive_the_dead_letter_workflow(
    grid, tmp_path, capsys
):
    """The operator loop: status surfaces the dead letter and its attempt
    histogram; retry-failed requeues it with a fresh budget; unknown items
    are a usage error."""
    from repro.cluster.cli import main as cluster_main, run_status

    run_dir = str(tmp_path)
    spec = grid()
    poison_id, _ = _poison_target(spec)
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="exception", match=poison_id,
                   times=None, note="poison")]
    )
    submit_spec(run_dir, spec, retry=NO_BACKOFF, fault_plan=plan)
    worker_loop(run_dir, worker_id="chaos", poll_interval=0.01)

    status = run_status(run_dir)
    assert status["queue"]["failed"] == 1
    assert status["failed_items"] == [poison_id]
    assert status["attempts"][str(NO_BACKOFF.max_attempts)] == 1

    assert cluster_main(["retry-failed", run_dir, "--item", "no-such-item"]) == 2
    assert cluster_main(["retry-failed", run_dir, "--item", poison_id]) == 0
    capsys.readouterr()
    queue = JobQueue(run_dir)
    assert queue.failed_ids() == []
    assert queue.counts()["pending"] == 1
    assert cluster_main(["retry-failed", run_dir]) == 0  # empty: a no-op
    assert "nothing to retry" in capsys.readouterr().out


def test_injected_fault_is_a_regular_exception():
    """Containment treats injected faults like any job failure — nothing in
    the worker special-cases them, so InjectedFault must be a plain error."""
    assert issubclass(InjectedFault, RuntimeError)


def _sorted_store_lines(run_dir):
    with open(os.path.join(run_dir, "results.jsonl"), encoding="utf-8") as fh:
        return sorted(line for line in fh if line.strip())


def test_zombie_stall_resume_cannot_contaminate_the_canonical_store(
    grid, tmp_path
):
    """The fence acceptance criterion, fully deterministic: a worker that
    claims an item, stalls past its lease (the ``stall_resume`` kind — a
    pause the process survives), loses the item to a healthy peer and then
    resumes its publish cannot reach the canonical store.  The merged
    ``results.jsonl`` is bit-identical to a clean run's; the zombie's lines
    land in ``quarantine.jsonl`` with fence-violation reasons."""
    import pickle

    from repro.cluster import repair_run_dir, verify_run_dir
    from repro.runtime.executors import execute_group
    from repro.runtime.spec import EvalJob
    from repro.runtime.store import job_metadata
    from repro.utils.serialization import append_jsonl, read_jsonl

    run_dir = str(tmp_path / "chaos")
    clean_dir = str(tmp_path / "clean")
    submit_spec(run_dir, grid(), lease_timeout=0.5)

    # The zombie claims an item at fence epoch 1 and executes it...
    queue = JobQueue(run_dir, lease_timeout=0.5)
    zitem = queue.claim("zombie")
    assert zitem is not None and zitem.fence == 1
    with open(os.path.join(run_dir, "context.pkl"), "rb") as fh:
        context = pickle.load(fh)
    jobs = [EvalJob.from_record(r) for r in zitem.payload["jobs"]]
    jobs_by_key = {job.content_key: job for job in jobs}
    zombie_records = []
    for key, cell in execute_group(context, jobs):
        record = {
            "key": key, "error": float(cell.error),
            "confidence": float(cell.confidence),
            "worker": "zombie", "item": zitem.item_id, "fence": zitem.fence,
        }
        record.update(job_metadata(jobs_by_key[key]))
        zombie_records.append(record)

    # ... then stalls at the publish seam past its lease; the lease
    # expires and the item is requeued out from under it.
    plan = FaultPlan([FaultRule(seam="publish", kind="stall_resume",
                                match=zitem.item_id, stall_s=0.05)])
    faults.install(plan)
    old = time.time() - 60.0
    os.utime(queue._path("leased", zitem.item_id), (old, old))
    assert zitem.item_id in queue.requeue_expired()

    # A healthy worker re-claims it (fence epoch 2) and drains the run.
    stats = worker_loop(run_dir, worker_id="w1", poll_interval=0.01)
    assert stats.items == len(queue.done_ids())
    assert queue.is_drained()
    assert queue.fence_of(zitem.item_id) == 2

    # The zombie finally resumes: its stall elapses, it publishes its
    # stale-fenced lines, and its completion rename loses.
    faults.fire("publish", zitem.item_id)  # the stall_resume pause
    zombie_shard = os.path.join(run_dir, "shards", "worker-zombie.jsonl")
    append_jsonl(zombie_shard, zombie_records, checksum=True)
    assert not queue.complete(zitem.item_id)

    merge_stats = merge_shards(run_dir)
    assert merge_stats.quarantined == len(zombie_records)

    # Ground truth: the same sweep, same healthy worker id, no chaos.
    submit_spec(clean_dir, grid(), lease_timeout=0.5)
    worker_loop(clean_dir, worker_id="w1", poll_interval=0.01)
    merge_shards(clean_dir)
    assert _sorted_store_lines(run_dir) == _sorted_store_lines(clean_dir)

    entries = read_jsonl(os.path.join(run_dir, "quarantine.jsonl"))
    assert {e["reason"] for e in entries} == {"fence_stale"}
    assert ({e["record"]["key"] for e in entries}
            == {r["key"] for r in zombie_records})

    # verify still flags the zombie's shard residue; repair quarantines it
    # (without touching the store) and the audit comes back clean.
    report = verify_run_dir(run_dir)
    assert report.counts() == {"shard.stale_fence": len(zombie_records)}
    before = _sorted_store_lines(run_dir)
    rstats = repair_run_dir(run_dir)
    assert rstats.shard_lines_quarantined == len(zombie_records)
    assert rstats.store_lines_quarantined == 0
    assert _sorted_store_lines(run_dir) == before
    assert verify_run_dir(run_dir).clean


def test_disk_full_publish_nacks_and_repair_restores_verify_clean(
    grid, tmp_path
):
    """An injected ENOSPC mid-append: the worker nacks (one failure, no
    dead letter), the retry republishes the whole group, the canonical
    store ends exact, and verify flags only the torn residue — which
    repair quarantines, restoring a clean audit."""
    from repro.cluster import repair_run_dir, verify_run_dir
    from repro.utils.serialization import read_jsonl

    run_dir = str(tmp_path)
    spec = grid()
    target_id, _ = _poison_target(spec)
    plan = FaultPlan([FaultRule(seam="publish", kind="disk_full",
                                match=target_id, times=1)])
    submit_spec(run_dir, spec, retry=NO_BACKOFF, fault_plan=plan)
    stats = worker_loop(run_dir, worker_id="w1", poll_interval=0.01)
    assert stats.failures == 1  # the injected ENOSPC cost one attempt
    assert stats.dead_lettered == 0
    queue = JobQueue(run_dir)
    assert queue.is_drained() and queue.failed_ids() == []
    assert queue.fence_of(target_id) == 2  # nack + re-claim bumped the epoch

    # No torn canonical state: the merged store is exact and complete.
    serial = run_sweep(grid(), executor=SerialExecutor())
    _assert_survivors_exact(run_dir, serial, poison_keys=set())

    report = verify_run_dir(run_dir)
    assert report.counts() == {"shard.torn_line": 1}  # the ENOSPC residue
    rstats = repair_run_dir(run_dir)
    assert rstats.shard_lines_quarantined == 1
    assert verify_run_dir(run_dir).clean
    entries = read_jsonl(os.path.join(run_dir, "quarantine.jsonl"))
    assert [e["reason"] for e in entries] == ["torn"]
    assert "raw" in entries[0]  # the undecodable bytes are kept for audit
