"""The ``python -m repro.faults`` CLI: validate, show, replay."""

import json
import os
import shlex

import pytest

from repro.faults import FAULTS_ENV, FaultPlan, FaultRule
from repro.faults.cli import main


@pytest.fixture
def plan():
    return FaultPlan(
        [
            FaultRule(seam="execute", kind="exception", match="group-a*",
                      times=None, note="poison"),
            FaultRule(seam="publish", kind="stall_resume", stall_s=0.5,
                      p=0.25),
            FaultRule(seam="heartbeat", kind="clock_skew", skew_s=90.0,
                      times=2, scope="run"),
        ],
        seed=99,
    )


@pytest.fixture
def schedule_file(tmp_path, plan):
    path = tmp_path / "schedule.json"
    path.write_text(json.dumps(plan.to_json()))
    return str(path)


def test_validate_accepts_a_well_formed_schedule(schedule_file, capsys):
    assert main(["validate", schedule_file]) == 0
    out = capsys.readouterr().out
    assert "ok: 3 rule(s), seed 99 (1 run-scoped)" in out


def test_validate_rejects_bad_schedules(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"rules": [{"seam": "teleport", "kind": "x"}]}))
    assert main(["validate", str(bad)]) == 2
    assert "invalid:" in capsys.readouterr().err
    unparseable = tmp_path / "broken.json"
    unparseable.write_text("{not json")
    assert main(["validate", str(unparseable)]) == 2
    assert main(["validate", str(tmp_path / "missing.json")]) == 2


def test_show_describes_every_rule(schedule_file, capsys):
    assert main(["show", schedule_file]) == 0
    out = capsys.readouterr().out
    assert "seed: 99" in out and "rules: 3" in out
    assert "execute:exception" in out and "times=inf" in out
    assert "stall_s=0.5" in out and "p=0.25" in out
    assert "skew_s=90.0" in out and "scope=run" in out
    assert "note='poison'" in out


def test_replay_round_trips_the_manifest_schedule(tmp_path, plan, capsys):
    """A run dir's recorded schedule comes back verbatim — as JSON, or as a
    shell export line arming the env var a worker honors."""
    from repro.cluster.broker import MANIFEST_FILENAME
    from repro.utils.serialization import atomic_write_json

    run_dir = str(tmp_path)
    atomic_write_json(
        os.path.join(run_dir, MANIFEST_FILENAME), {"faults": plan.to_json()}
    )
    assert main(["replay", run_dir]) == 0
    replayed = FaultPlan.from_json(json.loads(capsys.readouterr().out))
    assert replayed.rules == plan.rules and replayed.seed == plan.seed

    assert main(["replay", run_dir, "--export"]) == 0
    line = capsys.readouterr().out.strip()
    assert line.startswith(f"export {FAULTS_ENV}=")
    _, _, quoted = line.partition("=")
    restored = FaultPlan.from_json(json.loads(shlex.split(quoted)[0]))
    assert restored.rules == plan.rules


def test_replay_refuses_a_run_without_a_schedule(tmp_path, capsys):
    from repro.cluster.broker import MANIFEST_FILENAME
    from repro.utils.serialization import atomic_write_json

    assert main(["replay", str(tmp_path)]) == 2  # no manifest at all
    assert "manifest.json" in capsys.readouterr().err
    atomic_write_json(
        os.path.join(str(tmp_path), MANIFEST_FILENAME), {"faults": None}
    )
    assert main(["replay", str(tmp_path)]) == 2
    assert "without a fault schedule" in capsys.readouterr().err
