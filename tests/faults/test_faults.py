"""Unit tests for the deterministic fault-injection harness."""

import json

import pytest

from repro import faults
from repro.faults import FAULTS_ENV, FaultPlan, FaultRule, InjectedFault


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """Every test starts and ends with no process-local plan installed."""
    faults.clear()
    yield
    faults.clear()


def test_rule_validation():
    with pytest.raises(ValueError, match="seam"):
        FaultRule(seam="teleport", kind="exception")
    with pytest.raises(ValueError, match="kind"):
        FaultRule(seam="claim", kind="meteor")
    with pytest.raises(ValueError, match="nth"):
        FaultRule(seam="claim", kind="exception", nth=0)
    with pytest.raises(ValueError, match="times"):
        FaultRule(seam="claim", kind="exception", times=0)
    with pytest.raises(ValueError, match="p"):
        FaultRule(seam="claim", kind="exception", p=0.0)
    with pytest.raises(ValueError, match="stall_s"):
        FaultRule(seam="claim", kind="stall", stall_s=-1.0)


def test_nth_arms_and_times_caps():
    plan = FaultPlan([FaultRule(seam="execute", kind="exception", nth=2, times=1)])
    plan.fire("execute", "item")  # visit 1: below nth
    with pytest.raises(InjectedFault):
        plan.fire("execute", "item")  # visit 2: armed
    plan.fire("execute", "item")  # visit 3: times budget spent
    assert plan.fired_counts() == {"execute:exception": 1}


def test_times_none_is_a_permanent_poison():
    plan = FaultPlan([FaultRule(seam="execute", kind="exception", times=None)])
    for _ in range(4):
        with pytest.raises(InjectedFault):
            plan.fire("execute", "item")
    assert plan.fired_counts() == {"execute:exception": 4}


def test_match_pattern_selects_tags():
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="exception", match="group-a*", times=None)]
    )
    plan.fire("execute", "group-b1")  # no match, no visit recorded
    with pytest.raises(InjectedFault):
        plan.fire("execute", "group-a1")
    plan.fire("claim", "group-a1")  # wrong seam


def test_malloc_kind_raises_memory_error():
    plan = FaultPlan([FaultRule(seam="execute", kind="malloc", note="oom")])
    with pytest.raises(MemoryError, match="injected allocation failure"):
        plan.fire("execute", "item")
    plan.fire("execute", "item")  # times=1 default: second visit clean
    assert plan.fired_counts() == {"execute:malloc": 1}


def test_stall_sleeps_and_falls_through():
    import time

    plan = FaultPlan([FaultRule(seam="publish", kind="stall", stall_s=0.05)])
    start = time.monotonic()
    plan.fire("publish", "item")  # stalls, does not raise
    assert time.monotonic() - start >= 0.05
    plan.fire("publish", "item")  # times=1 default: second visit clean


def test_probabilistic_rules_replay_identically():
    def firings(seed):
        plan = FaultPlan(
            [FaultRule(seam="execute", kind="exception", p=0.5, times=None)],
            seed=seed,
        )
        fired = []
        for visit in range(40):
            try:
                plan.fire("execute", f"item-{visit % 5}")
                fired.append(False)
            except InjectedFault:
                fired.append(True)
        return fired

    assert firings(7) == firings(7)  # same seed: identical decisions
    assert any(firings(7)) and not all(firings(7))  # a real coin
    assert firings(7) != firings(8)  # the seed matters


def test_should_tear_is_cooperative_and_fire_ignores_torn_rules():
    plan = FaultPlan([FaultRule(seam="publish", kind="torn_write")])
    plan.fire("publish", "item")  # torn rules never fire() — no visit burned
    assert plan.should_tear("publish", "item")
    assert not plan.should_tear("publish", "item")  # times=1
    assert plan.fired_counts() == {"publish:torn_write": 1}
    # And the reverse: exception rules don't answer should_tear.
    plan2 = FaultPlan([FaultRule(seam="publish", kind="exception")])
    assert not plan2.should_tear("publish", "item")


def test_json_and_env_round_trip(monkeypatch):
    plan = FaultPlan(
        [
            FaultRule(seam="claim", kind="sigkill", nth=2, note="crashy"),
            FaultRule(seam="execute", kind="exception", match="group-a*",
                      times=None, p=0.25),
        ],
        seed=42,
    )
    restored = FaultPlan.from_json(plan.to_json())
    assert restored.rules == plan.rules
    assert restored.seed == plan.seed

    env = plan.to_env()
    assert set(env) == {FAULTS_ENV}
    monkeypatch.setenv(FAULTS_ENV, env[FAULTS_ENV])
    from_env = faults.plan_from_env()
    assert from_env.rules == plan.rules and from_env.seed == plan.seed

    monkeypatch.setenv(FAULTS_ENV, "{not json")
    with pytest.raises(json.JSONDecodeError):
        faults.plan_from_env()  # malformed schedules must not pass silently


def test_install_precedence(monkeypatch):
    assert faults.current() is None
    faults.fire("execute", "x")  # no plan: free no-op
    assert not faults.should_tear("publish", "x")

    env_plan = FaultPlan([FaultRule(seam="execute", kind="exception")])
    monkeypatch.setenv(FAULTS_ENV, env_plan.to_env()[FAULTS_ENV])
    installed = faults.install_from_env()
    assert installed is not None and faults.current() is installed
    # An already-installed plan wins over the environment.
    assert faults.install_from_env() is installed
    with pytest.raises(InjectedFault):
        faults.fire("execute", "x")
    faults.clear()
    assert faults.current() is None


def test_crash_after_claim_plan_shape():
    plan = faults.crash_after_claim_plan(3)
    assert len(plan.rules) == 1
    rule = plan.rules[0]
    assert (rule.seam, rule.kind, rule.nth, rule.times) == ("claim", "sigkill", 3, 1)
    assert rule.note == "crash_after_claim"


def test_stall_resume_sleeps_and_survives():
    """The zombie-maker: a pause the process *outlives* (unlike sigkill), so
    the worker resumes after its lease has been reassigned elsewhere."""
    import time

    plan = FaultPlan(
        [FaultRule(seam="publish", kind="stall_resume", stall_s=0.05)]
    )
    start = time.monotonic()
    plan.fire("publish", "item")  # stalls, raises nothing, resumes
    assert time.monotonic() - start >= 0.05
    assert plan.fired_counts() == {"publish:stall_resume": 1}


def test_clock_skew_is_cooperative_and_reports_its_offset():
    plan = FaultPlan(
        [FaultRule(seam="heartbeat", kind="clock_skew", skew_s=120.0)]
    )
    plan.fire("heartbeat", "item")  # cooperative kinds never fire()
    assert plan.clock_skew("heartbeat", "item") == 120.0
    assert plan.clock_skew("heartbeat", "item") is None  # times=1 spent
    # Rules of other kinds do not answer the clock_skew query.
    plan2 = FaultPlan([FaultRule(seam="heartbeat", kind="exception")])
    assert plan2.clock_skew("heartbeat", "item") is None


def test_disk_full_is_cooperative():
    plan = FaultPlan([FaultRule(seam="publish", kind="disk_full")])
    plan.fire("publish", "item")  # no visit burned by fire()
    assert plan.should_fill_disk("publish", "item")
    assert not plan.should_fill_disk("publish", "item")  # times=1
    assert not plan.should_tear("publish", "item")  # distinct kinds


def test_run_scope_requires_a_finite_budget():
    with pytest.raises(ValueError, match="scope"):
        FaultRule(seam="execute", kind="exception", scope="orbit")
    with pytest.raises(ValueError, match="times"):
        FaultRule(seam="execute", kind="exception", scope="run", times=None)


def test_run_scoped_budget_is_shared_across_bound_plans(tmp_path):
    """Two plans bound to one run dir model two worker processes: the rule's
    firing budget is fleet-wide, claimed through O_EXCL slot files."""
    import os

    budget_dir = str(tmp_path / "faults")

    def make_plan():
        return FaultPlan(
            [FaultRule(seam="execute", kind="exception", times=1, scope="run")]
        ).bind(budget_dir)

    a, b = make_plan(), make_plan()
    with pytest.raises(InjectedFault):
        a.fire("execute", "item")  # worker A claims the only slot
    b.fire("execute", "item")  # worker B: budget spent fleet-wide
    a.fire("execute", "item")  # and A itself cannot re-fire
    assert os.listdir(budget_dir) == ["rule-0-slot-0"]
    assert a.fired_counts() == {"execute:exception": 1}
    assert b.fired_counts() == {}


def test_unbound_run_scope_falls_back_to_process_budget():
    """Without bind() (no run dir to share through) the rule still honors
    its local times budget — chaos in plain unit tests keeps working."""
    plan = FaultPlan(
        [FaultRule(seam="execute", kind="exception", times=1, scope="run")]
    )
    with pytest.raises(InjectedFault):
        plan.fire("execute", "item")
    plan.fire("execute", "item")  # local budget spent
