"""The linter against this repository itself.

Two guarantees: the committed tree is clean, and the guarantee is not
vacuous — deleting a parity test makes REP004 fire (the acceptance check
that the rule actually guards the ``fused=`` seam).
"""

import os

from repro.analysis.config import default_config
from repro.analysis.engine import run_analysis

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_repository_tree_is_clean():
    report = run_analysis(default_config(REPO_ROOT))
    assert report.ok, "\n" + report.render_text()
    # The repository demonstrates the waiver mechanism on real code
    # (JobQueue.claim's intentional shuffle).
    assert report.waived >= 1


def test_rep004_fires_when_the_fused_parity_test_is_deleted():
    """Dropping tests/eval from the scan simulates deleting the parity tests
    for `evaluate_robust_error`: its fused= seam must surface as REP004."""
    tests_dir = os.path.join(REPO_ROOT, "tests")
    kept = sorted(
        os.path.join("tests", entry)
        for entry in os.listdir(tests_dir)
        if entry != "eval" and os.path.isdir(os.path.join(tests_dir, entry))
    )
    config = default_config(REPO_ROOT, test_paths=kept)
    report = run_analysis(config, use_baseline=False)
    rep004 = [f for f in report.new_findings if f.rule_id == "REP004"]
    assert any(
        "evaluate_robust_error(fused=...)" in finding.message for finding in rep004
    ), "\n" + report.render_text()


def test_every_registered_rule_has_an_id_and_title():
    from repro.analysis.rules import ALL_RULES, rule_registry

    assert len(ALL_RULES) == 9
    registry = rule_registry()
    assert sorted(registry) == [
        "REP001", "REP002", "REP003", "REP004", "REP005", "REP006", "REP007",
        "REP008", "REP009",
    ]
    for rule in ALL_RULES:
        assert rule.title
