"""CLI: exit codes, output formats, baseline subcommand."""

import io
import json
import textwrap

from repro.analysis.cli import EXIT_FINDINGS, EXIT_OK, EXIT_USAGE, main

CLEAN = "def fine():\n    return 1\n"
BAD = textwrap.dedent(
    """\
    import numpy as np

    def bad():
        np.random.seed(0)
    """
)


def write_project(tmp_path, source):
    src = tmp_path / "src"
    src.mkdir()
    (src / "mod.py").write_text(source, encoding="utf-8")
    return str(tmp_path)


def run_cli(*argv):
    stream = io.StringIO()
    code = main(list(argv), stream=stream)
    return code, stream.getvalue()


def test_check_exits_zero_on_clean_tree(tmp_path):
    root = write_project(tmp_path, CLEAN)
    code, out = run_cli("check", "--root", root)
    assert code == EXIT_OK
    assert "0 new finding(s)" in out


def test_check_exits_nonzero_on_new_findings(tmp_path):
    root = write_project(tmp_path, BAD)
    code, out = run_cli("check", "--root", root)
    assert code == EXIT_FINDINGS
    assert "REP001" in out


def test_check_json_format(tmp_path):
    root = write_project(tmp_path, BAD)
    code, out = run_cli("check", "--root", root, "--format", "json")
    assert code == EXIT_FINDINGS
    document = json.loads(out)
    assert document["ok"] is False
    assert document["new"][0]["rule"] == "REP001"
    assert document["new"][0]["path"] == "src/mod.py"
    assert document["new"][0]["fingerprint"]


def test_baseline_then_check_passes_and_no_baseline_overrides(tmp_path):
    root = write_project(tmp_path, BAD)
    code, out = run_cli("baseline", "--root", root)
    assert code == EXIT_OK
    assert "baselined 1 finding(s)" in out
    assert (tmp_path / "analysis-baseline.json").exists()

    code, out = run_cli("check", "--root", root)
    assert code == EXIT_OK
    assert "1 baselined" in out

    code, _ = run_cli("check", "--root", root, "--no-baseline")
    assert code == EXIT_FINDINGS


def test_custom_baseline_path_is_relative_to_root(tmp_path):
    root = write_project(tmp_path, BAD)
    code, _ = run_cli("baseline", "--root", root, "--baseline", "ci/base.json")
    assert code == EXIT_OK
    assert (tmp_path / "ci" / "base.json").exists()


def test_usage_errors_exit_two(capsys):
    # main() converts argparse's SystemExit into a return code.
    assert main(["not-a-command"]) == EXIT_USAGE
    assert main([]) == EXIT_USAGE


def test_rules_subcommand_lists_all_rules():
    code, out = run_cli("rules")
    assert code == EXIT_OK
    for rule_id in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
        assert rule_id in out


def test_unreadable_file_becomes_a_finding(tmp_path):
    root = write_project(tmp_path, "def broken(:\n")
    code, out = run_cli("check", "--root", root)
    assert code == EXIT_FINDINGS
    assert "does not parse" in out
