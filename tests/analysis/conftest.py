"""Fixtures for the invariant-linter tests.

Rule tests build throwaway projects under ``tmp_path`` instead of committing
fixture files: the violating sources exist only inside the test, so neither
the repository's own ``python -m repro.analysis check`` nor ruff ever scans
them.
"""

import textwrap

import pytest

from repro.analysis.config import default_config
from repro.analysis.engine import run_analysis


@pytest.fixture
def project(tmp_path):
    """Build ``{relpath: source}`` into a tmp tree, return its config."""

    def build(files):
        for relpath, text in files.items():
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return default_config(str(tmp_path))

    return build


@pytest.fixture
def check(project):
    """Build a project and run the full analysis on it (no baseline)."""

    def run(files, rules=None):
        config = project(files)
        return run_analysis(config, rules=rules, use_baseline=False)

    return run
