"""Baseline round-trip: grandfather, tolerate, age out, keep reasons."""

import json
import textwrap

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import run_analysis

BAD = textwrap.dedent(
    """\
    import numpy as np

    def bad():
        np.random.seed(0)
    """
)

WORSE = textwrap.dedent(
    """\
    import numpy as np

    def bad():
        np.random.seed(0)

    def also_bad():
        np.random.shuffle([1, 2])
    """
)


def test_baselined_findings_are_tolerated_not_hidden(project):
    config = project({"src/mod.py": BAD})
    report = run_analysis(config, use_baseline=False)
    assert len(report.new_findings) == 1

    write_baseline(config.baseline_path, report.findings)
    again = run_analysis(config)
    assert again.ok
    assert again.new_findings == []
    assert len(again.baselined) == 1


def test_new_findings_still_fail_after_baselining(project, tmp_path):
    config = project({"src/mod.py": BAD})
    write_baseline(
        config.baseline_path, run_analysis(config, use_baseline=False).findings
    )
    (tmp_path / "src" / "mod.py").write_text(WORSE, encoding="utf-8")
    report = run_analysis(config)
    assert not report.ok
    assert len(report.new_findings) == 1
    assert "np.random.shuffle" in report.new_findings[0].message
    assert len(report.baselined) == 1


def test_fingerprints_survive_unrelated_edits(project, tmp_path):
    config = project({"src/mod.py": BAD})
    write_baseline(
        config.baseline_path, run_analysis(config, use_baseline=False).findings
    )
    # Push the violation to a different line number; the fingerprint is
    # line-free so the baseline still matches.
    (tmp_path / "src" / "mod.py").write_text(
        "# a new header comment\n# another\n" + BAD, encoding="utf-8"
    )
    report = run_analysis(config)
    assert report.ok
    assert len(report.baselined) == 1


def test_regeneration_preserves_reasons_and_drops_fixed(project, tmp_path):
    config = project({"src/mod.py": WORSE})
    findings = run_analysis(config, use_baseline=False).findings
    assert len(findings) == 2
    write_baseline(config.baseline_path, findings)

    # Document a reason by hand, as review would.
    document = json.loads((tmp_path / "analysis-baseline.json").read_text())
    document["findings"][0]["reason"] = "kept for the round-trip test"
    (tmp_path / "analysis-baseline.json").write_text(json.dumps(document))
    kept_fingerprint = document["findings"][0]["fingerprint"]

    # One violation is fixed; regenerating drops it and keeps the reason.
    (tmp_path / "src" / "mod.py").write_text(BAD, encoding="utf-8")
    write_baseline(
        config.baseline_path, run_analysis(config, use_baseline=False).findings
    )
    regenerated = load_baseline(config.baseline_path)
    assert len(regenerated.entries) == 1
    if kept_fingerprint in regenerated.entries:
        assert regenerated.reason(kept_fingerprint) == "kept for the round-trip test"


def test_waived_findings_never_enter_the_baseline(project):
    config = project(
        {
            "src/mod.py": (
                "import numpy as np\n\n"
                "def bad():\n"
                "    np.random.seed(0)  # repro: ignore[REP001] fixture\n"
            )
        }
    )
    report = run_analysis(config, use_baseline=False)
    assert report.findings == []
    assert report.waived == 1
