"""Waiver syntax: parsing, attachment, mandatory reasons, staleness."""

from repro.analysis.waivers import parse_waivers


def rule_ids(report):
    return sorted(finding.rule_id for finding in report.new_findings)


VIOLATION = """\
    import numpy as np

    def seed_everything():
        np.random.seed(0){waiver}
"""


def test_same_line_waiver_suppresses(check):
    report = check(
        {
            "src/mod.py": VIOLATION.format(
                waiver="  # repro: ignore[REP001] fixture exercises the waiver"
            )
        }
    )
    assert report.new_findings == []
    assert report.waived == 1


def test_standalone_waiver_covers_next_code_line(check):
    source = """\
        import numpy as np

        def seed_everything():
            # repro: ignore[REP001] reason spans
            # a second comment line before the code
            np.random.seed(0)
    """
    report = check({"src/mod.py": source})
    assert report.new_findings == []
    assert report.waived == 1


def test_waiver_without_reason_rejected_and_violation_kept(check):
    report = check(
        {"src/mod.py": VIOLATION.format(waiver="  # repro: ignore[REP001]")}
    )
    assert rule_ids(report) == ["REP000", "REP001"]
    messages = {f.rule_id: f.message for f in report.new_findings}
    assert "missing its mandatory reason" in messages["REP000"]


def test_waiver_without_rule_list_rejected(check):
    report = check(
        {"src/mod.py": VIOLATION.format(waiver="  # repro: ignore just because")}
    )
    assert "REP000" in rule_ids(report)
    assert "REP001" in rule_ids(report)


def test_malformed_rule_list_rejected(check):
    report = check(
        {"src/mod.py": VIOLATION.format(waiver="  # repro: ignore[REP1,] oops")}
    )
    assert "REP000" in rule_ids(report)


def test_wrong_rule_waiver_does_not_suppress_and_reports_stale(check):
    report = check(
        {"src/mod.py": VIOLATION.format(waiver="  # repro: ignore[REP002] wrong rule")}
    )
    # The REP001 violation survives AND the pointless waiver is flagged.
    assert rule_ids(report) == ["REP000", "REP001"]
    stale = [f for f in report.new_findings if f.rule_id == "REP000"]
    assert "suppresses nothing" in stale[0].message


def test_unused_waiver_on_clean_code_reported(check):
    source = """\
        def fine():
            return 1  # repro: ignore[REP001] nothing here needs waiving
    """
    report = check({"src/mod.py": source})
    assert rule_ids(report) == ["REP000"]


def test_waiver_inside_string_literal_is_not_a_waiver():
    source = 'DOC = "# repro: ignore[REP001] not a comment"\n'
    waivers = parse_waivers("src/mod.py", source)
    assert waivers.waivers == []
    assert waivers.findings == []


def test_multiple_rules_one_waiver():
    source = "x = 1  # repro: ignore[REP001, REP003] shared justification\n"
    waivers = parse_waivers("src/mod.py", source)
    assert waivers.waivers[0].rule_ids == ["REP001", "REP003"]
    assert waivers.waivers[0].reason == "shared justification"
    assert waivers.suppresses("REP003", 1)
    assert not waivers.suppresses("REP002", 1)
