"""Cross-module rules: REP004 (parity seams), REP005 (content key),
REP006 (pickle boundary)."""


def findings_for(report, rule_id):
    return [f for f in report.new_findings if f.rule_id == rule_id]


# -- REP004: parity-seam coverage ---------------------------------------------

SEAM_SRC = """\
    def evaluate(model, fused=True):
        return model if fused else model
"""


def test_rep004_uncovered_seam_is_a_finding(check):
    report = check({"src/mod.py": SEAM_SRC, "tests/test_mod.py": "def test_a():\n    pass\n"})
    found = findings_for(report, "REP004")
    assert len(found) == 1
    assert "evaluate(fused=...)" in found[0].message


def test_rep004_explicit_keyword_in_a_test_covers_the_seam(check):
    test = """\
        from mod import evaluate

        def test_parity():
            assert evaluate(1, fused=False) == evaluate(1, fused=True)
    """
    report = check({"src/mod.py": SEAM_SRC, "tests/test_mod.py": test})
    assert findings_for(report, "REP004") == []


def test_rep004_positional_or_defaulted_call_does_not_count(check):
    test = """\
        from mod import evaluate

        def test_not_parity():
            assert evaluate(1) == evaluate(1, False)
    """
    report = check({"src/mod.py": SEAM_SRC, "tests/test_mod.py": test})
    assert len(findings_for(report, "REP004")) == 1


def test_rep004_init_and_dataclass_seams_addressed_by_class_name(check):
    source = """\
        from dataclasses import dataclass

        class Field:
            def __init__(self, size, backend="dense"):
                self.size = size
                self.backend = backend

        @dataclass
        class Config:
            error_draw: str = "dense"
    """
    test = """\
        from mod import Config, Field

        def test_parity():
            assert Field(3, backend="sparse").size == 3
            assert Config(error_draw="sparse").error_draw == "sparse"
    """
    report = check({"src/mod.py": source, "tests/test_mod.py": test})
    assert findings_for(report, "REP004") == []
    # Drop the test: both class-addressed seams surface.
    report = check({"src/mod.py": source, "tests/test_mod.py": "x = 1\n"})
    assert len(findings_for(report, "REP004")) == 2


def test_rep004_private_helpers_are_not_seams(check):
    source = """\
        def _helper(fused=True):
            return fused
    """
    report = check({"src/mod.py": source})
    assert findings_for(report, "REP004") == []


# -- REP005: content-key completeness -----------------------------------------

SPEC_PATH = "src/repro/runtime/spec.py"


def spec_source(payload_lines, key_call="job._content_key()"):
    """A minimal spec module whose ``_content_key`` folds ``payload_lines``."""
    body = "\n".join("        " + line for line in payload_lines)
    return f"""\
from dataclasses import dataclass


@dataclass(frozen=True)
class EvalJob:
    kind: str
    rate: float
    offset: int = 0

    def _content_key(self, extra=None):
        payload = {{"schema": 1, "kind": self.kind}}
{body}
        return payload


class SweepSpec:
    def __init__(self, dataset):
        self.dataset = dataset
        self._cache = None

    def key(self, job):
        return {key_call}
"""


def test_rep005_fully_keyed_spec_passes(check):
    spec = spec_source([
        'payload["rate"] = self.rate',
        'payload["offset"] = self.offset',
        'payload["dataset"] = 0',
    ])
    report = check({SPEC_PATH: spec})
    assert findings_for(report, "REP005") == []


def test_rep005_unkeyed_field_is_a_finding(check):
    spec = spec_source(['payload["rate"] = self.rate', 'payload["dataset"] = 0'])
    report = check({SPEC_PATH: spec})
    found = findings_for(report, "REP005")
    assert len(found) == 1
    assert "EvalJob.offset" in found[0].message
    assert "share a cache key" in found[0].message


def test_rep005_unkeyed_spec_attribute_is_a_finding(check):
    # ``dataset`` is a public SweepSpec attribute with no payload key;
    # private ``_cache`` is never checked.
    spec = spec_source(['payload["rate"] = self.rate', 'payload["offset"] = 0'])
    report = check({SPEC_PATH: spec})
    found = findings_for(report, "REP005")
    assert len(found) == 1
    assert "SweepSpec.dataset" in found[0].message


def test_rep005_extra_dict_at_call_site_counts_as_payload(check):
    spec = spec_source(
        ['payload["rate"] = self.rate'],
        key_call='job._content_key({"offset": job.offset, "dataset": 0})',
    )
    report = check({SPEC_PATH: spec})
    assert findings_for(report, "REP005") == []


def test_rep005_rotted_coverage_mapping_is_a_finding(project):
    from repro.analysis.engine import run_analysis

    spec = spec_source(['payload["rate"] = self.rate', 'payload["dataset"] = 0'])
    config = project({SPEC_PATH: spec})
    config.rep005.coverage = {"offset": ("gone_key",)}
    report = run_analysis(config, use_baseline=False)
    found = findings_for(report, "REP005")
    assert len(found) == 1
    assert "rotted" in found[0].message


# -- REP006: pickle-boundary safety -------------------------------------------

NO_PICKLE_DEF = """\
    from repro.utils.markers import no_pickle


    @no_pickle
    class BatchPlan:
        def __init__(self, dataset):
            self.dataset = dataset
"""


def test_rep006_missing_getstate_is_a_finding(check):
    holder = """\
        from plan import BatchPlan

        class Context:
            def __init__(self, dataset):
                self._plan = BatchPlan(dataset)
    """
    report = check({"src/plan.py": NO_PICKLE_DEF, "src/ctx.py": holder})
    found = findings_for(report, "REP006")
    assert len(found) == 1
    assert "Context._plan" in found[0].message
    assert "no `__getstate__`" in found[0].message


def test_rep006_getstate_that_clears_the_attr_passes(check):
    holder = """\
        from plan import BatchPlan

        class Context:
            def __init__(self, dataset):
                self._plan = BatchPlan(dataset)

            def __getstate__(self):
                state = dict(self.__dict__)
                state["_plan"] = None
                return state
    """
    report = check({"src/plan.py": NO_PICKLE_DEF, "src/ctx.py": holder})
    assert findings_for(report, "REP006") == []


def test_rep006_getstate_that_forgets_the_attr_is_a_finding(check):
    holder = """\
        from plan import BatchPlan

        class Context:
            def __init__(self, dataset):
                self._plan = BatchPlan(dataset)

            def __getstate__(self):
                return dict(self.__dict__)
    """
    report = check({"src/plan.py": NO_PICKLE_DEF, "src/ctx.py": holder})
    found = findings_for(report, "REP006")
    assert len(found) == 1
    assert "never clears it" in found[0].message


def test_rep006_tracks_local_temporaries_and_dict_assignment(check):
    holder = """\
        from plan import BatchPlan

        class Context:
            def warm(self, dataset):
                plan = BatchPlan(dataset)
                self.__dict__["_plan_cache"] = plan
    """
    report = check({"src/plan.py": NO_PICKLE_DEF, "src/ctx.py": holder})
    found = findings_for(report, "REP006")
    assert len(found) == 1
    assert "Context._plan_cache" in found[0].message


def test_rep006_configured_cache_attrs_need_clearing_too(check):
    holder = """\
        class Entry:
            def warm(self, weights):
                self._clean_weights_cache = weights
    """
    report = check({"src/ctx.py": holder})
    found = findings_for(report, "REP006")
    assert len(found) == 1
    assert "Entry._clean_weights_cache" in found[0].message


def test_rep006_none_reset_is_not_a_payload(check):
    holder = """\
        class Entry:
            def reset(self):
                self._clean_weights_cache = None
    """
    report = check({"src/ctx.py": holder})
    assert findings_for(report, "REP006") == []
