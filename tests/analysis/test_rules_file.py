"""Per-file rules: REP001 (RNG), REP002 (hot alloc), REP003 (atomic), REP007 (print)."""


def findings_for(report, rule_id):
    return [f for f in report.new_findings if f.rule_id == rule_id]


# -- REP001: no global RNG ----------------------------------------------------


def test_rep001_flags_numpy_global_calls(check):
    source = """\
        import numpy as np

        def bad():
            np.random.seed(0)
            return np.random.rand(3)
    """
    report = check({"src/mod.py": source})
    found = findings_for(report, "REP001")
    assert len(found) == 2
    assert any("np.random.seed" in f.message for f in found)
    assert any("np.random.rand" in f.message for f in found)
    assert found[0].symbol == "bad"


def test_rep001_allows_explicit_generator_constructors(check):
    source = """\
        import numpy as np
        import random

        def good(seed):
            rng = np.random.default_rng(seed)
            seq = np.random.SeedSequence(seed)
            local = random.Random(seed)
            return rng, seq, local
    """
    report = check({"src/mod.py": source})
    assert findings_for(report, "REP001") == []


def test_rep001_flags_randomstate_and_stdlib_globals(check):
    source = """\
        import numpy as np
        import random

        def bad():
            state = np.random.RandomState(0)
            random.seed(7)
            return state, random.randint(0, 9)
    """
    report = check({"src/mod.py": source})
    assert len(findings_for(report, "REP001")) == 3


def test_rep001_flags_names_imported_from_rng_modules(check):
    source = """\
        from numpy.random import seed
        from random import shuffle

        def bad(items):
            seed(0)
            shuffle(items)
    """
    report = check({"src/mod.py": source})
    assert len(findings_for(report, "REP001")) == 2


def test_rep001_exempts_the_rng_module_itself(check):
    source = """\
        import numpy as np

        def reseed_global(seed):
            np.random.seed(seed)
    """
    report = check({"src/repro/utils/rng.py": source})
    assert findings_for(report, "REP001") == []


# -- REP002: hot-path allocation lint -----------------------------------------


def test_rep002_flags_banned_calls_only_under_the_marker(check):
    source = """\
        import numpy as np
        from repro.utils.markers import hot_path

        @hot_path
        def hot(values):
            flat = np.unique(values)
            both = np.union1d(flat, values)
            return both.tolist()

        def cold(values):
            return np.unique(values)
    """
    report = check({"src/mod.py": source})
    found = findings_for(report, "REP002")
    assert len(found) == 3
    assert all("hot" in f.message for f in found)


def test_rep002_nested_functions_inherit_the_marker(check):
    source = """\
        import numpy as np
        from repro.utils.markers import hot_path

        @hot_path
        def hot(values):
            def inner():
                return np.append(values, 0)
            return inner()
    """
    report = check({"src/mod.py": source})
    assert len(findings_for(report, "REP002")) == 1


def test_rep002_clean_hot_function_passes(check):
    source = """\
        import numpy as np
        from repro.utils.arrays import sorted_unique
        from repro.utils.markers import hot_path

        @hot_path
        def hot(values):
            return sorted_unique(np.asarray(values))
    """
    report = check({"src/mod.py": source})
    assert findings_for(report, "REP002") == []


# -- REP003: atomic-write discipline ------------------------------------------

RAW_WRITE = """\
    def publish(path):
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("x")
"""


def test_rep003_flags_truncate_open_in_scoped_modules(check):
    report = check({"src/repro/cluster/mod.py": RAW_WRITE})
    found = findings_for(report, "REP003")
    assert len(found) == 1
    assert "atomic_write_" in found[0].message


def test_rep003_ignores_the_same_code_outside_scope(check):
    report = check({"src/repro/eval/mod.py": RAW_WRITE})
    assert findings_for(report, "REP003") == []


def test_rep003_allows_reads_and_appends(check):
    source = """\
        def consume(path, shard):
            with open(path, "r", encoding="utf-8") as handle:
                data = handle.read()
            with open(shard, "ab") as handle:
                handle.write(b"line")
            return data
    """
    report = check({"src/repro/cluster/mod.py": source})
    assert findings_for(report, "REP003") == []


def test_rep003_treats_dynamic_modes_and_pathlib_writers_as_suspect(check):
    source = """\
        def publish(path, mode, target):
            with open(path, mode) as handle:
                handle.write("x")
            target.write_text("y")
    """
    report = check({"src/repro/runtime/store.py": source})
    assert len(findings_for(report, "REP003")) == 2


def test_rep003_exempts_the_serialization_helpers_themselves(check):
    report = check({"src/repro/utils/serialization.py": RAW_WRITE})
    assert findings_for(report, "REP003") == []


# -- REP007: no print in library modules --------------------------------------


def test_rep007_flags_print_in_library_modules(check):
    source = """\
        def work(items):
            print("processed", len(items))
            return items
    """
    report = check({"src/repro/runtime/mod.py": source})
    found = findings_for(report, "REP007")
    assert len(found) == 1
    assert "repro.telemetry" in found[0].message
    assert found[0].symbol == "work"


def test_rep007_exempts_clis_main_shims_and_out_of_scope_files(check):
    source = """\
        def render():
            print("status: ok")
    """
    report = check(
        {
            "src/repro/cluster/cli.py": source,
            "src/repro/analysis/cli.py": source,
            "src/repro/telemetry/report.py": source,
            "src/repro/biterror/__main__.py": source,
            "src/tool.py": source,  # outside src/repro: not library code
        }
    )
    assert findings_for(report, "REP007") == []


def test_rep007_ignores_shadowed_and_attribute_prints(check):
    source = """\
        class Printer:
            def print(self, text):
                return text

        def use(printer, print):
            printer.print("attribute call is not the builtin")
            print("shadowed local callable")
    """
    report = check({"src/repro/utils/mod.py": source})
    # An attribute `.print()` is some object's API; a call through a local
    # binding named ``print`` is still the builtin pattern readers expect,
    # so the rule flags only the bare-name form.
    assert len(findings_for(report, "REP007")) == 1
