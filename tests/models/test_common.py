"""Tests for shared model building blocks."""

import pytest

from repro.models.common import NORM_CHOICES, make_norm
from repro.nn import GroupNorm


def test_norm_choices_constant():
    assert "gn" in NORM_CHOICES and "bn" in NORM_CHOICES and "none" in NORM_CHOICES


@pytest.mark.parametrize("channels", [2, 3, 5, 7, 8, 12])
def test_group_count_always_divides(channels):
    norm = make_norm("gn", channels)
    assert isinstance(norm, GroupNorm)
    assert channels % norm.num_groups == 0


def test_case_insensitive_norm_names():
    assert isinstance(make_norm("GN", 8), GroupNorm)
