"""Tests for the model zoo and registry."""

import numpy as np
import pytest

from repro.models import (
    MLP,
    LeNet,
    ResNet,
    SimpleNet,
    WideResNet,
    build_model,
    list_models,
    model_summary,
    register_model,
)
from repro.models.common import make_norm
from repro.nn import BatchNorm2d, GroupNorm, Identity
from repro.nn.losses import CrossEntropyLoss


@pytest.fixture
def image_batch(rng):
    return rng.normal(size=(4, 3, 16, 16))


def _forward_backward(model, x, num_classes=10):
    logits = model(x)
    assert logits.shape == (x.shape[0], num_classes)
    labels = np.zeros(x.shape[0], dtype=np.int64)
    _, grad = CrossEntropyLoss()(logits, labels)
    grad_in = model.backward(grad)
    assert grad_in.shape == x.shape
    assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())


def test_mlp_forward_backward(rng):
    model = MLP(in_features=20, num_classes=5, hidden=(16, 8), rng=rng)
    x = rng.normal(size=(6, 20))
    logits = model(x)
    assert logits.shape == (6, 5)
    _, grad = CrossEntropyLoss()(logits, np.zeros(6, dtype=np.int64))
    assert model.backward(grad).shape == x.shape


def test_mlp_flattens_image_input(rng):
    model = MLP(in_features=3 * 8 * 8, num_classes=4, hidden=(8,), rng=rng)
    assert model(rng.normal(size=(2, 3, 8, 8))).shape == (2, 4)


def test_lenet_forward_backward(rng):
    model = LeNet(in_channels=1, num_classes=10, width=4, rng=rng)
    x = rng.normal(size=(3, 1, 16, 16))
    _forward_backward(model, x)


def test_simplenet_forward_backward(rng, image_batch):
    model = SimpleNet(in_channels=3, num_classes=10, widths=(8, 16), convs_per_stage=1, rng=rng)
    _forward_backward(model, image_batch)


def test_resnet_forward_backward(rng, image_batch):
    model = ResNet(in_channels=3, num_classes=10, widths=(8, 16), blocks_per_stage=1, rng=rng)
    _forward_backward(model, image_batch)


def test_wideresnet_forward_backward(rng, image_batch):
    model = WideResNet(in_channels=3, num_classes=10, base_width=4, widen_factor=2, rng=rng)
    _forward_backward(model, image_batch)


@pytest.mark.parametrize("norm", ["gn", "bn", "bn-batchstats", "none"])
def test_norm_choices(norm, rng, image_batch):
    model = SimpleNet(in_channels=3, num_classes=10, widths=(8,), convs_per_stage=1, norm=norm, rng=rng)
    assert model(image_batch).shape == (4, 10)


def test_make_norm_types():
    assert isinstance(make_norm("gn", 8), GroupNorm)
    assert isinstance(make_norm("bn", 8), BatchNorm2d)
    assert isinstance(make_norm("none", 8), Identity)
    bn = make_norm("bn-batchstats", 8)
    assert isinstance(bn, BatchNorm2d) and bn.use_batch_stats_at_eval
    with pytest.raises(ValueError):
        make_norm("unknown", 8)


def test_make_norm_adjusts_group_count():
    # 6 channels is not divisible by the default 4 groups; must not raise.
    norm = make_norm("gn", 6)
    assert isinstance(norm, GroupNorm)
    assert 6 % norm.num_groups == 0


def test_registry_contains_default_models():
    names = list_models()
    for expected in ("mlp", "lenet", "simplenet", "resnet", "wideresnet"):
        assert expected in names


def test_build_model_and_summary(rng):
    model = build_model("lenet", in_channels=1, num_classes=4, width=4, rng=rng)
    summary = model_summary(model)
    assert summary["class"] == "LeNet"
    assert summary["num_parameters"] == model.num_parameters()
    assert summary["num_parameters"] > 0


def test_build_unknown_model_raises():
    with pytest.raises(KeyError):
        build_model("does-not-exist")


def test_register_duplicate_raises():
    with pytest.raises(ValueError):
        register_model("mlp", MLP)


def test_resnet_shortcut_on_channel_change(rng):
    from repro.models.resnet import ResidualBlock

    block = ResidualBlock(4, 8, downsample=True, rng=rng)
    x = rng.normal(size=(2, 4, 8, 8))
    out = block(x)
    assert out.shape == (2, 8, 4, 4)
    grad = block.backward(np.ones_like(out))
    assert grad.shape == x.shape
