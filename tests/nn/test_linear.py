"""Tests for the Linear layer."""

import numpy as np
import pytest

from helpers import check_layer_gradients
from repro.nn import Linear


def test_forward_matches_matmul(rng):
    layer = Linear(6, 3, rng=rng)
    x = rng.normal(size=(4, 6))
    expected = x @ layer.weight.data + layer.bias.data
    np.testing.assert_allclose(layer(x), expected)


def test_forward_without_bias(rng):
    layer = Linear(5, 2, bias=False, rng=rng)
    x = rng.normal(size=(3, 5))
    np.testing.assert_allclose(layer(x), x @ layer.weight.data)
    assert len(layer.parameters()) == 1


def test_wrong_input_shape_raises(rng):
    layer = Linear(5, 2, rng=rng)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(3, 4)))


def test_backward_before_forward_raises(rng):
    layer = Linear(5, 2, rng=rng)
    with pytest.raises(RuntimeError):
        layer.backward(np.zeros((3, 2)))


def test_gradients_match_finite_differences(rng):
    layer = Linear(4, 3, rng=rng)
    check_layer_gradients(layer, (5, 4), rng)


def test_gradients_accumulate_across_batches(rng):
    layer = Linear(3, 2, rng=rng)
    x = rng.normal(size=(2, 3))
    layer(x)
    layer.backward(np.ones((2, 2)))
    first = layer.weight.grad.copy()
    layer(x)
    layer.backward(np.ones((2, 2)))
    np.testing.assert_allclose(layer.weight.grad, 2 * first)
