"""Tests for the Module/Parameter base classes."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential


class ToyModule(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 3)))
        self.child = Linear(3, 2, rng=np.random.default_rng(0))

    def forward(self, x):
        return self.child(x @ self.weight.data)

    def backward(self, grad):
        grad = self.child.backward(grad)
        return grad @ self.weight.data.T


def test_parameter_registration_and_names():
    module = ToyModule()
    names = [name for name, _ in module.named_parameters()]
    assert "weight" in names
    assert "child.weight" in names
    assert "child.bias" in names


def test_parameter_shape_and_size():
    param = Parameter(np.zeros((3, 4)), name="p")
    assert param.shape == (3, 4)
    assert param.size == 12


def test_num_parameters_counts_all_scalars():
    module = ToyModule()
    expected = 2 * 3 + 3 * 2 + 2
    assert module.num_parameters() == expected


def test_zero_grad_resets_gradients():
    module = ToyModule()
    for param in module.parameters():
        param.grad += 1.0
    module.zero_grad()
    for param in module.parameters():
        assert np.all(param.grad == 0.0)


def test_train_eval_propagates_to_children():
    module = ToyModule()
    module.eval()
    assert not module.training
    assert not module.child.training
    module.train()
    assert module.training and module.child.training


def test_state_dict_round_trip():
    module = ToyModule()
    state = module.state_dict()
    other = ToyModule()
    # Perturb then load.
    for param in other.parameters():
        param.data += 1.0
    other.load_state_dict(state)
    for (_, a), (_, b) in zip(module.named_parameters(), other.named_parameters()):
        np.testing.assert_array_equal(a.data, b.data)


def test_load_state_dict_shape_mismatch_raises():
    module = ToyModule()
    state = module.state_dict()
    state["weight"] = np.zeros((5, 5))
    with pytest.raises(ValueError):
        module.load_state_dict(state)


def test_assign_parameter_before_init_raises():
    class Broken(Module):
        def __init__(self):
            self.weight = Parameter(np.zeros(3))

    with pytest.raises(RuntimeError):
        Broken()


def test_sequential_forward_backward_and_indexing():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    assert len(model) == 3
    assert isinstance(model[1], ReLU)
    x = rng.normal(size=(5, 4))
    out = model(x)
    assert out.shape == (5, 2)
    grad_in = model.backward(np.ones_like(out))
    assert grad_in.shape == x.shape


def test_sequential_append():
    model = Sequential(Linear(4, 4, rng=np.random.default_rng(0)))
    model.append(ReLU())
    assert len(model) == 2
    assert len(model.parameters()) == 2  # weight + bias of the linear layer


def test_named_modules_includes_nested():
    module = ToyModule()
    names = [name for name, _ in module.named_modules()]
    assert "" in names
    assert "child" in names
