"""Tests for activation layers."""

import numpy as np
import pytest

from helpers import check_layer_gradients
from repro.nn import Identity, LeakyReLU, ReLU, Sigmoid, Tanh
from repro.nn.flatten import Flatten


def test_relu_forward():
    x = np.array([[-1.0, 0.0, 2.0]])
    np.testing.assert_array_equal(ReLU()(x), [[0.0, 0.0, 2.0]])


def test_relu_backward_masks_negative():
    layer = ReLU()
    layer(np.array([[-1.0, 3.0]]))
    grad = layer.backward(np.array([[5.0, 5.0]]))
    np.testing.assert_array_equal(grad, [[0.0, 5.0]])


def test_leaky_relu_forward():
    layer = LeakyReLU(0.1)
    np.testing.assert_allclose(layer(np.array([[-2.0, 4.0]])), [[-0.2, 4.0]])


def test_sigmoid_range(rng):
    out = Sigmoid()(rng.normal(size=(10, 4)) * 5)
    assert np.all(out > 0) and np.all(out < 1)


def test_tanh_matches_numpy(rng):
    x = rng.normal(size=(3, 3))
    np.testing.assert_allclose(Tanh()(x), np.tanh(x))


def test_identity_passthrough(rng):
    x = rng.normal(size=(2, 2))
    layer = Identity()
    np.testing.assert_array_equal(layer(x), x)
    np.testing.assert_array_equal(layer.backward(x), x)


@pytest.mark.parametrize(
    "layer", [ReLU(), LeakyReLU(0.2), Sigmoid(), Tanh()], ids=lambda l: type(l).__name__
)
def test_activation_gradients(layer, rng):
    check_layer_gradients(layer, (4, 6), rng, input_scale=2.0, atol=1e-5)


def test_flatten_round_trip(rng):
    layer = Flatten()
    x = rng.normal(size=(3, 2, 4, 4))
    out = layer(x)
    assert out.shape == (3, 32)
    grad = layer.backward(out)
    assert grad.shape == x.shape


def test_backward_before_forward_raises():
    for layer in (ReLU(), Sigmoid(), Tanh(), LeakyReLU(), Flatten()):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1)))
