"""Tests for losses and classification metrics."""

import numpy as np
import pytest
from helpers import numerical_gradient
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.losses import CrossEntropyLoss, accuracy, confidences, log_softmax, softmax


def test_softmax_rows_sum_to_one(rng):
    probs = softmax(rng.normal(size=(6, 5)) * 3)
    np.testing.assert_allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs >= 0)


@given(
    logits=hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 5), st.integers(2, 6)),
        elements=st.floats(-50, 50),
    ),
    shift=st.floats(-100, 100),
)
@settings(max_examples=40, deadline=None)
def test_softmax_shift_invariance(logits, shift):
    np.testing.assert_allclose(softmax(logits), softmax(logits + shift), atol=1e-9)


def test_log_softmax_matches_log_of_softmax(rng):
    logits = rng.normal(size=(4, 7))
    np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-12)


def test_cross_entropy_matches_manual():
    logits = np.array([[2.0, 0.0, -1.0], [0.0, 3.0, 0.0]])
    labels = np.array([0, 1])
    loss, _ = CrossEntropyLoss()(logits, labels)
    manual = -np.mean(
        [np.log(softmax(logits)[0, 0]), np.log(softmax(logits)[1, 1])]
    )
    assert np.isclose(loss, manual)


def test_cross_entropy_gradient_matches_finite_differences(rng):
    logits = rng.normal(size=(3, 4))
    labels = np.array([1, 0, 3])
    loss_fn = CrossEntropyLoss()

    def objective(values):
        return loss_fn(values, labels)[0]

    _, grad = loss_fn(logits, labels)
    numeric = numerical_gradient(objective, logits.copy())
    np.testing.assert_allclose(grad, numeric, atol=1e-6)


def test_label_smoothing_target_distribution():
    loss_fn = CrossEntropyLoss(label_smoothing=0.1)
    targets = loss_fn.target_distribution(np.array([2]), num_classes=10)
    # The paper's variant: 0.9 for the true class, 0.1 / 9 for the others.
    assert np.isclose(targets[0, 2], 0.9)
    np.testing.assert_allclose(np.delete(targets[0], 2), 0.1 / 9)
    assert np.isclose(targets.sum(), 1.0)


def test_label_smoothing_increases_loss_on_confident_predictions():
    logits = np.array([[10.0, -10.0]])
    labels = np.array([0])
    plain, _ = CrossEntropyLoss()(logits, labels)
    smoothed, _ = CrossEntropyLoss(label_smoothing=0.1)(logits, labels)
    assert smoothed > plain


def test_invalid_label_smoothing_raises():
    with pytest.raises(ValueError):
        CrossEntropyLoss(label_smoothing=1.0)


def test_cross_entropy_validates_shapes(rng):
    loss_fn = CrossEntropyLoss()
    with pytest.raises(ValueError):
        loss_fn(rng.normal(size=(3,)), np.array([0, 1, 2]))
    with pytest.raises(ValueError):
        loss_fn(rng.normal(size=(3, 2)), np.array([0, 1]))
    with pytest.raises(ValueError):
        loss_fn(rng.normal(size=(2, 2)), np.array([0, 5]))


def test_accuracy_and_confidences():
    logits = np.array([[5.0, 0.0], [0.0, 5.0], [5.0, 0.0]])
    labels = np.array([0, 1, 1])
    assert np.isclose(accuracy(logits, labels), 2 / 3)
    conf = confidences(logits)
    assert conf.shape == (3,)
    assert np.all(conf > 0.5)
