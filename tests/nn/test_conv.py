"""Tests for Conv2d and the im2col/col2im primitives."""

import numpy as np
import pytest

from helpers import check_layer_gradients
from repro.nn import Conv2d
from repro.nn.conv import col2im, conv_output_size, im2col


def naive_conv2d(x, weight, bias, stride, padding):
    """Reference convolution with explicit loops."""
    n, c_in, h, w = x.shape
    c_out, _, kh, kw = weight.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    x_padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((n, c_out, out_h, out_w))
    for b in range(n):
        for o in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    window = x_padded[
                        b, :, i * stride : i * stride + kh, j * stride : j * stride + kw
                    ]
                    out[b, o, i, j] = (window * weight[o]).sum() + bias[o]
    return out


def test_conv_output_size():
    assert conv_output_size(8, 3, 1, 1) == 8
    assert conv_output_size(8, 3, 2, 1) == 4
    assert conv_output_size(7, 3, 1, 0) == 5


def test_im2col_shapes(rng):
    x = rng.normal(size=(2, 3, 8, 8))
    cols, out_h, out_w = im2col(x, 3, 3, 1, 1)
    assert cols.shape == (2, 3 * 9, out_h * out_w)
    assert (out_h, out_w) == (8, 8)


def test_im2col_col2im_adjoint(rng):
    """col2im is the transpose of im2col: <im2col(x), y> == <x, col2im(y)>."""
    x = rng.normal(size=(1, 2, 6, 6))
    cols, _, _ = im2col(x, 3, 3, 1, 1)
    y = rng.normal(size=cols.shape)
    lhs = float((cols * y).sum())
    rhs = float((x * col2im(y, x.shape, 3, 3, 1, 1)).sum())
    assert np.isclose(lhs, rhs)


@pytest.mark.parametrize("stride,padding", [(1, 1), (1, 0), (2, 1)])
def test_forward_matches_naive(rng, stride, padding):
    layer = Conv2d(3, 4, kernel_size=3, stride=stride, padding=padding, rng=rng)
    x = rng.normal(size=(2, 3, 8, 8))
    expected = naive_conv2d(x, layer.weight.data, layer.bias.data, stride, padding)
    np.testing.assert_allclose(layer(x), expected, atol=1e-10)


def test_forward_wrong_channels_raises(rng):
    layer = Conv2d(3, 4, kernel_size=3, rng=rng)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(1, 2, 8, 8)))


def test_gradients_match_finite_differences(rng):
    layer = Conv2d(2, 3, kernel_size=3, padding=1, rng=rng)
    check_layer_gradients(layer, (2, 2, 5, 5), rng, atol=1e-4)


def test_gradients_with_stride(rng):
    layer = Conv2d(2, 2, kernel_size=3, stride=2, padding=1, rng=rng)
    check_layer_gradients(layer, (1, 2, 6, 6), rng, atol=1e-4)


def test_conv_without_bias(rng):
    layer = Conv2d(1, 1, kernel_size=3, padding=1, bias=False, rng=rng)
    assert len(layer.parameters()) == 1
    out = layer(rng.normal(size=(1, 1, 4, 4)))
    assert out.shape == (1, 1, 4, 4)


# -- strided im2col and BLAS contraction vs. the references ----------------


@pytest.mark.parametrize("stride,padding,kernel", [(1, 1, 3), (1, 0, 3), (2, 1, 3), (2, 0, 2), (3, 2, 5)])
def test_im2col_strided_matches_loop_reference(rng, stride, padding, kernel):
    x = rng.normal(size=(2, 3, 9, 11))
    strided, oh_s, ow_s = im2col(x, kernel, kernel, stride, padding, method="strided")
    loop, oh_l, ow_l = im2col(x, kernel, kernel, stride, padding, method="loop")
    assert (oh_s, ow_s) == (oh_l, ow_l)
    np.testing.assert_array_equal(strided, loop)  # bit-identical


def test_im2col_strided_result_owns_its_memory(rng):
    x = rng.normal(size=(1, 2, 6, 6))
    cols, _, _ = im2col(x, 3, 3, 1, 1)
    cols += 1.0  # must not touch the (padded copy of the) input
    again, _, _ = im2col(x, 3, 3, 1, 1)
    np.testing.assert_array_equal(again + 1.0, cols)


def test_im2col_unknown_method_raises(rng):
    with pytest.raises(ValueError, match="im2col method"):
        im2col(rng.normal(size=(1, 1, 4, 4)), 3, 3, 1, 1, method="magic")


def test_matmul_contraction_matches_einsum_reference(rng):
    from repro.nn.conv import conv_contraction

    x = rng.normal(size=(3, 4, 8, 8))
    grad_out = rng.normal(size=(3, 5, 8, 8))

    results = {}
    for mode in ("matmul", "einsum"):
        layer = Conv2d(4, 5, kernel_size=3, padding=1, rng=np.random.default_rng(0))
        with conv_contraction(mode):
            out = layer(x)
            grad_in = layer.backward(grad_out)
        results[mode] = (out, grad_in, layer.weight.grad.copy(), layer.bias.grad.copy())
    for a, b in zip(results["matmul"], results["einsum"]):
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-12)


def test_conv_contraction_context_restores_previous_mode():
    from repro.nn.conv import conv_contraction, get_conv_contraction, set_conv_contraction

    assert get_conv_contraction() == "matmul"  # the default
    with conv_contraction("einsum"):
        assert get_conv_contraction() == "einsum"
    assert get_conv_contraction() == "matmul"
    with pytest.raises(ValueError, match="contraction"):
        set_conv_contraction("fft")


def test_matmul_gradients_match_finite_differences(rng):
    # The default (matmul) contraction must satisfy the same gradient checks
    # as the einsum reference.
    layer = Conv2d(2, 3, kernel_size=3, stride=2, padding=1, rng=rng)
    check_layer_gradients(layer, (2, 2, 6, 6), rng, atol=1e-4)


def test_im2col_strided_1x1_kernel_owns_its_memory(rng):
    # Degenerate 1x1 stride-1 windows reshape to a *view*; im2col must still
    # hand back writable, unaliased columns (ResNet 1x1 projection shortcuts).
    x = rng.normal(size=(2, 3, 5, 5))
    cols, _, _ = im2col(x, 1, 1, 1, 0, method="strided")
    assert cols.flags.writeable
    loop, _, _ = im2col(x, 1, 1, 1, 0, method="loop")
    np.testing.assert_array_equal(cols, loop)
    cols += 1.0
    np.testing.assert_array_equal(x, x)  # input untouched
    again, _, _ = im2col(x, 1, 1, 1, 0, method="strided")
    np.testing.assert_array_equal(again + 1.0, cols)
