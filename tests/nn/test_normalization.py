"""Tests for GroupNorm and BatchNorm2d."""

import numpy as np
import pytest

from helpers import check_layer_gradients
from repro.nn import BatchNorm2d, GroupNorm


def test_groupnorm_normalizes_per_group(rng):
    layer = GroupNorm(2, 4, affine=False)
    x = rng.normal(3.0, 2.0, size=(2, 4, 5, 5))
    out = layer(x)
    grouped = out.reshape(2, 2, -1)
    np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-10)
    np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-4)


def test_groupnorm_invalid_groups_raises():
    with pytest.raises(ValueError):
        GroupNorm(3, 4)


def test_groupnorm_channel_mismatch_raises(rng):
    layer = GroupNorm(2, 4)
    with pytest.raises(ValueError):
        layer(rng.normal(size=(1, 6, 4, 4)))


def test_groupnorm_reparameterized_scale_defaults_to_identity(rng):
    layer = GroupNorm(2, 4, reparameterize=True)
    # Stored scale is zero, effective scale is one.
    np.testing.assert_array_equal(layer.scale.data, np.zeros(4))
    np.testing.assert_array_equal(layer.effective_scale(), np.ones(4))
    baseline = GroupNorm(2, 4, affine=False)
    x = rng.normal(size=(2, 4, 3, 3))
    np.testing.assert_allclose(layer(x), baseline(x))


def test_groupnorm_non_reparameterized_scale(rng):
    layer = GroupNorm(2, 4, reparameterize=False)
    np.testing.assert_array_equal(layer.scale.data, np.ones(4))
    np.testing.assert_array_equal(layer.effective_scale(), np.ones(4))


def test_groupnorm_gradients(rng):
    layer = GroupNorm(2, 4)
    check_layer_gradients(layer, (2, 4, 3, 3), rng, atol=1e-4)


def test_batchnorm_training_normalizes_per_channel(rng):
    layer = BatchNorm2d(3, affine=False)
    x = rng.normal(5.0, 3.0, size=(8, 3, 4, 4))
    out = layer(x)
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
    np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-4)


def test_batchnorm_running_statistics_updated(rng):
    layer = BatchNorm2d(2, momentum=0.5)
    x = rng.normal(2.0, 1.0, size=(16, 2, 4, 4))
    layer(x)
    assert not np.allclose(layer.running_mean, 0.0)
    assert not np.allclose(layer.running_var, 1.0)


def test_batchnorm_eval_uses_running_statistics(rng):
    layer = BatchNorm2d(2, momentum=1.0)
    x = rng.normal(2.0, 1.5, size=(32, 2, 4, 4))
    layer(x)  # training pass sets running stats to batch stats
    layer.eval()
    out_eval = layer(x)
    layer.train()
    out_train = layer(x)
    np.testing.assert_allclose(out_eval, out_train, atol=1e-6)


def test_batchnorm_batch_stats_at_eval(rng):
    layer = BatchNorm2d(2, use_batch_stats_at_eval=True)
    x = rng.normal(4.0, 2.0, size=(16, 2, 3, 3))
    layer.eval()
    out = layer(x)
    # Even in eval mode the output is normalized with batch statistics.
    np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-8)


def test_batchnorm_eval_does_not_update_running_stats(rng):
    layer = BatchNorm2d(2)
    layer.eval()
    before = layer.running_mean.copy()
    layer(rng.normal(3.0, 1.0, size=(8, 2, 3, 3)))
    np.testing.assert_array_equal(layer.running_mean, before)


def test_batchnorm_gradients_training(rng):
    layer = BatchNorm2d(3)
    check_layer_gradients(layer, (4, 3, 3, 3), rng, atol=1e-4)


def test_batchnorm_gradients_eval(rng):
    layer = BatchNorm2d(3)
    layer(rng.normal(size=(4, 3, 3, 3)))  # populate running stats
    layer.eval()
    check_layer_gradients(layer, (4, 3, 3, 3), rng, atol=1e-4)


def test_batchnorm_state_dict_includes_buffers(rng):
    layer = BatchNorm2d(2)
    layer(rng.normal(1.0, 1.0, size=(8, 2, 3, 3)))
    state = layer.state_dict()
    assert "running_mean" in state and "running_var" in state
    fresh = BatchNorm2d(2)
    fresh.load_state_dict(state)
    np.testing.assert_allclose(fresh.running_mean, layer.running_mean)
