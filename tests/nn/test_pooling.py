"""Tests for pooling layers."""

import numpy as np
import pytest

from helpers import check_layer_gradients
from repro.nn import AvgPool2d, GlobalAvgPool2d, MaxPool2d


def test_maxpool_forward_values():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = MaxPool2d(2)(x)
    expected = np.array([[[[5.0, 7.0], [13.0, 15.0]]]])
    np.testing.assert_array_equal(out, expected)


def test_maxpool_backward_routes_to_argmax():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    layer = MaxPool2d(2)
    layer(x)
    grad = layer.backward(np.ones((1, 1, 2, 2)))
    # Only the max positions receive gradient.
    assert grad.sum() == 4.0
    assert grad[0, 0, 1, 1] == 1.0 and grad[0, 0, 0, 0] == 0.0


def test_maxpool_requires_divisible_dims(rng):
    with pytest.raises(ValueError):
        MaxPool2d(2)(rng.normal(size=(1, 1, 5, 4)))


def test_avgpool_forward_values():
    x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
    out = AvgPool2d(2)(x)
    expected = np.array([[[[2.5, 4.5], [10.5, 12.5]]]])
    np.testing.assert_array_equal(out, expected)


def test_avgpool_gradients(rng):
    check_layer_gradients(AvgPool2d(2), (2, 3, 4, 4), rng)


def test_maxpool_gradients(rng):
    # Use distinct values so argmax ties do not break finite differences.
    layer = MaxPool2d(2)
    check_layer_gradients(layer, (1, 2, 4, 4), rng, input_scale=5.0, atol=1e-4)


def test_global_avgpool_forward_and_shape(rng):
    x = rng.normal(size=(3, 4, 5, 5))
    out = GlobalAvgPool2d()(x)
    assert out.shape == (3, 4, 1, 1)
    np.testing.assert_allclose(out[..., 0, 0], x.mean(axis=(2, 3)))


def test_global_avgpool_gradients(rng):
    check_layer_gradients(GlobalAvgPool2d(), (2, 3, 4, 4), rng)


def test_backward_before_forward_raises():
    for layer in (MaxPool2d(2), AvgPool2d(2), GlobalAvgPool2d()):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 1, 2, 2)))
