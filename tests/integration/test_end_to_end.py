"""Integration tests: full training → quantization → bit errors → evaluation."""

import numpy as np
import pytest

from repro.biterror import make_error_fields, make_profiled_chips
from repro.core import train_robust_model
from repro.data import SyntheticImageConfig, make_synthetic_images, train_test_split
from repro.eval import evaluate_profiled_error, evaluate_robust_error
from repro.models import build_model
from repro.utils.serialization import load_state_dict, save_state_dict


@pytest.fixture(scope="module")
def image_task():
    config = SyntheticImageConfig(
        num_classes=4, samples_per_class=24, image_size=8, channels=1,
        noise_std=0.05, max_shift=1, seed=13,
    )
    dataset = make_synthetic_images(config)
    return train_test_split(dataset, test_fraction=0.25, rng=np.random.default_rng(0))


@pytest.fixture(scope="module")
def trained_cnn(image_task):
    train, test = image_task
    result = train_robust_model(
        train, test, model_name="lenet", width=4, clip_w_max=0.25,
        bit_error_rate=0.02, epochs=15, batch_size=16, precision=8, seed=3,
    )
    return result, test


def test_cnn_pipeline_learns_the_task(trained_cnn):
    result, _ = trained_cnn
    assert result.clean_error <= 0.35


def test_robust_error_pipeline_runs_at_multiple_rates(trained_cnn):
    result, test = trained_cnn
    fields = make_error_fields(result.quantized_weights.num_weights, 8, 5, seed=21)
    low = evaluate_robust_error(result.model, result.quantizer, test, 0.001, error_fields=fields)
    high = evaluate_robust_error(result.model, result.quantizer, test, 0.05, error_fields=fields)
    assert 0.0 <= low.mean_error <= 1.0
    assert high.mean_error >= low.mean_error - 0.05


def test_profiled_chip_evaluation(trained_cnn):
    result, test = trained_cnn
    chips = make_profiled_chips(seed=5)
    report = evaluate_profiled_error(
        result.model, result.quantizer, test, chips["chip2"], rate=0.02,
        offsets=(0, 512, 1024),
    )
    assert len(report.errors) == 3


def test_serialization_round_trip_preserves_predictions(trained_cnn, tmp_path_factory):
    result, test = trained_cnn
    path = tmp_path_factory.mktemp("models") / "lenet.npz"
    save_state_dict(result.model.state_dict(), str(path))
    fresh = build_model(
        "lenet", in_channels=1, num_classes=4, width=4, rng=np.random.default_rng(99)
    )
    fresh.load_state_dict(load_state_dict(str(path)))
    inputs, _ = test[np.arange(min(16, len(test)))]
    result.model.eval()
    fresh.eval()
    np.testing.assert_allclose(result.model(inputs), fresh(inputs))


def test_mlp_clipping_improves_high_rate_robustness(blob_data):
    """Qualitative reproduction of the paper's core claim on a tiny task:

    at a high bit error rate, the clipped model's RErr is no worse than the
    unclipped model's (usually much better)."""
    train, test = blob_data
    kwargs = dict(model_name="mlp", hidden=(32,), epochs=15, batch_size=16, seed=7)
    plain = train_robust_model(train, test, clip_w_max=None, bit_error_rate=None, **kwargs)
    clipped = train_robust_model(train, test, clip_w_max=0.2, bit_error_rate=0.02, **kwargs)
    fields = make_error_fields(plain.quantized_weights.num_weights, 8, 8, seed=33)
    rate = 0.05
    rerr_plain = evaluate_robust_error(plain.model, plain.quantizer, test, rate, error_fields=fields)
    rerr_clipped = evaluate_robust_error(
        clipped.model, clipped.quantizer, test, rate, error_fields=fields
    )
    assert rerr_clipped.mean_error <= rerr_plain.mean_error + 0.05
