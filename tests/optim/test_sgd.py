"""Tests for the SGD optimizer."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.optim import SGD


def quadratic_loss_and_grad(param: Parameter, target: np.ndarray):
    diff = param.data - target
    param.grad[...] = 2 * diff
    return float((diff**2).sum())


def test_sgd_minimizes_quadratic():
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    optimizer = SGD([param], lr=0.1, momentum=0.0)
    for _ in range(100):
        optimizer.zero_grad()
        quadratic_loss_and_grad(param, target)
        optimizer.step()
    np.testing.assert_allclose(param.data, target, atol=1e-4)


def test_momentum_accelerates_convergence():
    target = np.array([5.0])

    def run(momentum):
        param = Parameter(np.zeros(1))
        optimizer = SGD([param], lr=0.01, momentum=momentum)
        for _ in range(50):
            optimizer.zero_grad()
            quadratic_loss_and_grad(param, target)
            optimizer.step()
        return abs(float(param.data[0]) - 5.0)

    assert run(0.9) < run(0.0)


def test_weight_decay_shrinks_weights():
    param = Parameter(np.array([10.0]))
    optimizer = SGD([param], lr=0.1, momentum=0.0, weight_decay=0.5)
    optimizer.zero_grad()  # gradient stays zero; only decay acts
    optimizer.step()
    assert abs(float(param.data[0])) < 10.0


def test_nesterov_runs():
    param = Parameter(np.array([1.0]))
    optimizer = SGD([param], lr=0.1, momentum=0.9, nesterov=True)
    optimizer.zero_grad()
    param.grad[...] = 1.0
    optimizer.step()
    assert float(param.data[0]) < 1.0


def test_zero_grad_clears_all():
    params = [Parameter(np.ones(2)), Parameter(np.ones(3))]
    optimizer = SGD(params, lr=0.1)
    for p in params:
        p.grad += 5.0
    optimizer.zero_grad()
    for p in params:
        assert np.all(p.grad == 0.0)


def test_invalid_arguments_raise():
    param = Parameter(np.ones(1))
    with pytest.raises(ValueError):
        SGD([], lr=0.1)
    with pytest.raises(ValueError):
        SGD([param], lr=0.0)
    with pytest.raises(ValueError):
        SGD([param], lr=0.1, momentum=-0.1)


def test_state_dict_contains_hyperparameters():
    param = Parameter(np.ones(1))
    optimizer = SGD([param], lr=0.05, momentum=0.9, weight_decay=5e-4)
    state = optimizer.state_dict()
    assert state["lr"] == 0.05
    assert state["momentum"] == 0.9
