"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.optim import ConstantLR, CosineLR, MultiStepLR


def test_constant_lr():
    schedule = ConstantLR(0.05)
    assert schedule.lr_at(0) == 0.05
    assert schedule.lr_at(100) == 0.05


def test_multistep_decays_at_milestones():
    schedule = MultiStepLR(1.0, milestones=[10, 20], gamma=0.1)
    assert schedule.lr_at(0) == 1.0
    assert schedule.lr_at(9) == 1.0
    assert np.isclose(schedule.lr_at(10), 0.1)
    assert np.isclose(schedule.lr_at(19), 0.1)
    assert np.isclose(schedule.lr_at(20), 0.01)


def test_paper_schedule_milestones():
    schedule = MultiStepLR.paper_schedule(0.05, total_epochs=100)
    assert schedule.milestones == [40, 60, 80]
    assert np.isclose(schedule.lr_at(39), 0.05)
    assert np.isclose(schedule.lr_at(40), 0.005)
    assert np.isclose(schedule.lr_at(80), 0.05 * 0.001)


def test_cosine_endpoints():
    schedule = CosineLR(0.1, total_epochs=10, min_lr=0.01)
    assert np.isclose(schedule.lr_at(0), 0.1)
    assert np.isclose(schedule.lr_at(10), 0.01)
    assert schedule.lr_at(5) < 0.1


def test_cosine_is_monotone_decreasing():
    schedule = CosineLR(1.0, total_epochs=20)
    values = [schedule.lr_at(epoch) for epoch in range(21)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_cosine_invalid_epochs():
    with pytest.raises(ValueError):
        CosineLR(0.1, total_epochs=0)
