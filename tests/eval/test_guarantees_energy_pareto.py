"""Tests for the Prop. 1 bound, energy accounting and Pareto frontier."""

import pytest

from repro.biterror import VoltageModel
from repro.eval import (
    deviation_bound,
    energy_report,
    pareto_frontier,
    precision_energy_factor,
    required_samples,
)
from repro.eval.guarantees import two_sided_failure_probability


def test_deviation_bound_matches_paper_examples():
    """The paper quotes ~4.1% for n=1e4 and ~1.7% for n=1e5 (l=1e6, delta=0.99)."""
    assert abs(deviation_bound(10**4, 10**6, 0.01) - 0.041) < 0.005
    assert abs(deviation_bound(10**5, 10**6, 0.01) - 0.017) < 0.005


def test_deviation_bound_decreases_with_more_samples():
    assert deviation_bound(10**5, 100, 0.05) < deviation_bound(10**3, 100, 0.05)
    assert deviation_bound(10**4, 10**4, 0.05) < deviation_bound(10**4, 10, 0.05)


def test_deviation_bound_validation():
    with pytest.raises(ValueError):
        deviation_bound(0, 10, 0.1)
    with pytest.raises(ValueError):
        deviation_bound(10, 10, 1.5)


def test_failure_probability_decreases_with_epsilon():
    assert two_sided_failure_probability(1000, 1000, 0.2) < two_sided_failure_probability(
        1000, 1000, 0.05
    )
    with pytest.raises(ValueError):
        two_sided_failure_probability(10, 10, 0.0)


def test_required_samples():
    n = required_samples(0.05, num_error_patterns=10**6, delta=0.01)
    assert deviation_bound(n, 10**6, 0.01) <= 0.05
    assert deviation_bound(n // 10, 10**6, 0.01) > 0.05
    with pytest.raises(ValueError):
        required_samples(1e-9, 10, 0.01, max_power=3)


def test_precision_energy_factor():
    assert precision_energy_factor(8) == 1.0
    assert precision_energy_factor(4) == 0.5
    with pytest.raises(ValueError):
        precision_energy_factor(0)


def test_energy_report_8bit_vs_4bit():
    report_8 = energy_report(0.01, precision=8)
    report_4 = energy_report(0.01, precision=4)
    assert report_4.total_energy < report_8.total_energy
    assert report_4.saving > report_8.saving
    assert 0.0 < report_8.voltage <= 1.0


def test_energy_report_headline_numbers():
    """8-bit at p=1% saves roughly 30%; adding 4-bit pushes savings higher (Sec. 1)."""
    report = energy_report(0.01, precision=8, voltage_model=VoltageModel())
    assert 0.2 <= report.saving <= 0.45
    report_4bit = energy_report(0.01, precision=4)
    assert report_4bit.saving > 0.5


def test_pareto_frontier_removes_dominated_points():
    points = [
        {"robust_error": 0.05, "energy": 0.8, "name": "a"},
        {"robust_error": 0.06, "energy": 0.9, "name": "dominated"},
        {"robust_error": 0.10, "energy": 0.6, "name": "b"},
        {"robust_error": 0.04, "energy": 0.95, "name": "c"},
    ]
    frontier = pareto_frontier(points)
    names = [p["name"] for p in frontier]
    assert "dominated" not in names
    assert set(names) == {"a", "b", "c"}
    # Sorted by robust error.
    assert names == sorted(names, key=lambda n: next(p["robust_error"] for p in points if p["name"] == n))


def test_pareto_frontier_single_point():
    frontier = pareto_frontier([{"robust_error": 0.1, "energy": 0.5}])
    assert len(frontier) == 1
