"""Tests for confidence statistics and redundancy metrics."""

import numpy as np
import pytest

from repro.biterror import inject_into_quantized
from repro.core import Trainer, TrainerConfig
from repro.eval import confidence_statistics, logit_statistics, redundancy_metrics
from repro.eval.redundancy import relative_absolute_error, relu_relevance, weight_relevance
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    Trainer(model, quantizer, TrainerConfig(epochs=10, batch_size=16, seed=1)).train(train)
    return model, quantizer


def test_logit_statistics_keys(rng):
    stats = logit_statistics(rng.normal(size=(10, 4)))
    assert set(stats) == {
        "mean_max_logit", "std_max_logit", "mean_logit", "max_logit", "min_logit",
    }
    assert stats["max_logit"] >= stats["min_logit"]


def test_confidence_statistics_clean_only(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    stats = confidence_statistics(model, quantizer, test)
    assert 0.0 < stats["confidence_clean"] <= 1.0
    assert "perturbed_mean_max_logit" not in stats


def test_confidence_statistics_with_perturbed_weights(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    quantized = quantize_model(model, quantizer)
    corrupted = inject_into_quantized(quantized, 0.05, np.random.default_rng(0))
    perturbed_weights = quantizer.dequantize(corrupted)
    stats = confidence_statistics(model, quantizer, test, perturbed_weights=perturbed_weights)
    assert "confidence_perturbed" in stats and "confidence_gap" in stats
    assert np.isclose(
        stats["confidence_gap"], stats["confidence_clean"] - stats["confidence_perturbed"]
    )


def test_weight_relevance_bounds(trained):
    model, _ = trained
    relevance = weight_relevance(model)
    assert 0.0 < relevance <= 1.0


def test_weight_relevance_uniform_weights_is_one():
    model = MLP(in_features=4, num_classes=2, hidden=(4,), rng=np.random.default_rng(0))
    for param in model.parameters():
        param.data[...] = 0.3
    assert np.isclose(weight_relevance(model), 1.0)


def test_relu_relevance_fraction(trained, blob_data):
    _, test = blob_data
    model, _ = trained
    fraction = relu_relevance(model, test)
    assert 0.0 <= fraction <= 1.0


def test_relative_absolute_error_positive(trained):
    model, quantizer = trained
    error = relative_absolute_error(model, quantizer, 0.02, num_samples=3)
    assert error > 0.0


def test_redundancy_metrics_keys(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    metrics = redundancy_metrics(model, quantizer, test, bit_error_rate=0.02, num_samples=2)
    assert set(metrics) == {"relative_abs_error", "weight_relevance", "relu_relevance"}
