"""Tests for robust test error (RErr) evaluation."""

import numpy as np
import pytest

from repro.biterror import ChipProfile, make_error_fields
from repro.core import Trainer, TrainerConfig
from repro.eval import evaluate_clean_error, evaluate_profiled_error, evaluate_robust_error
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    trainer = Trainer(model, quantizer, TrainerConfig(epochs=12, batch_size=16, seed=1))
    trainer.train(train)
    return model, quantizer


def test_clean_error_matches_zero_rate_result(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    clean = evaluate_clean_error(model, quantizer, test)
    result = evaluate_robust_error(model, quantizer, test, bit_error_rate=0.0)
    assert np.isclose(result.clean_error, clean)
    assert result.mean_error == result.clean_error
    assert result.std_error == 0.0


def test_robust_error_fields_and_statistics(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    result = evaluate_robust_error(
        model, quantizer, test, bit_error_rate=0.01, num_samples=6, seed=3
    )
    assert len(result.errors) == 6
    assert result.mean_error >= 0.0
    assert result.max_error >= result.mean_error
    assert 0.0 < result.confidence_clean <= 1.0
    assert 0.0 < result.confidence_perturbed <= 1.0


def test_robust_error_increases_with_rate(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    fields = make_error_fields(model.num_parameters(), 8, 8, seed=11)
    low = evaluate_robust_error(model, quantizer, test, 0.001, error_fields=fields)
    high = evaluate_robust_error(model, quantizer, test, 0.1, error_fields=fields)
    assert high.mean_error >= low.mean_error


def test_shared_fields_give_reproducible_results(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    fields = make_error_fields(model.num_parameters(), 8, 4, seed=5)
    a = evaluate_robust_error(model, quantizer, test, 0.02, error_fields=fields)
    b = evaluate_robust_error(model, quantizer, test, 0.02, error_fields=fields)
    np.testing.assert_allclose(a.errors, b.errors)


def test_profiled_evaluation_over_offsets(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    chip = ChipProfile(rows=256, columns=128, column_alignment=0.5, seed=9)
    result = evaluate_profiled_error(
        model, quantizer, test, chip, rate=0.02, offsets=(0, 1000, 2000)
    )
    assert len(result.errors) == 3
    assert result.mean_error >= 0.0


def test_no_quantizer_clean_error(trained, blob_data):
    _, test = blob_data
    model, _ = trained
    error = evaluate_clean_error(model, None, test)
    assert 0.0 <= error <= 1.0


# -- fused evaluation parity --------------------------------------------------


@pytest.mark.parametrize("backend", ["dense", "sparse"])
def test_fused_evaluation_is_bit_identical_to_reference(trained, blob_data, backend):
    """Same fields: the fused per-draw loop equals the pre-fusion data flow."""
    _, test = blob_data
    model, quantizer = trained
    fields = make_error_fields(model.num_parameters(), 8, 5, seed=21, backend=backend)
    for rate in (0.005, 0.02):
        fused = evaluate_robust_error(
            model, quantizer, test, rate, error_fields=fields
        )
        reference = evaluate_robust_error(
            model, quantizer, test, rate, error_fields=fields, fused=False
        )
        assert fused.errors == reference.errors  # exact floats, same order
        assert fused.clean_error == reference.clean_error
        assert fused.confidence_clean == reference.confidence_clean
        assert fused.confidence_perturbed == reference.confidence_perturbed


def test_fused_evaluation_with_hoisted_inputs_matches_reference(trained, blob_data):
    """Precomputed quantized/clean_stats still decode clean weights for patching."""
    from repro.eval.robust_error import model_error_and_confidence
    from repro.quant.qat import quantize_model

    _, test = blob_data
    model, quantizer = trained
    fields = make_error_fields(model.num_parameters(), 8, 4, seed=23)
    quantized = quantize_model(model, quantizer)
    clean_weights = quantizer.dequantize(quantized)
    clean_stats = model_error_and_confidence(model, clean_weights, test, 64)
    hoisted = evaluate_robust_error(
        model, quantizer, test, 0.01, error_fields=fields,
        quantized=quantized, clean_stats=clean_stats,
    )
    reference = evaluate_robust_error(
        model, quantizer, test, 0.01, error_fields=fields, fused=False
    )
    assert hoisted.errors == reference.errors
    assert hoisted.confidence_perturbed == reference.confidence_perturbed


def test_sparse_backend_consistent_with_dense(trained, blob_data):
    """Auto-created fields: the sparse backend twin tracks the dense one."""
    _, test = blob_data
    model, quantizer = trained
    dense = evaluate_robust_error(
        model, quantizer, test, 0.02, num_samples=5, seed=13, backend="dense"
    )
    sparse = evaluate_robust_error(
        model, quantizer, test, 0.02, num_samples=5, seed=13, backend="sparse"
    )
    # The clean evaluation never touches the injection backend.
    assert sparse.clean_error == dense.clean_error
    assert sparse.confidence_clean == dense.confidence_clean
    # Both backends draw from the same flip-set distribution.
    assert abs(sparse.mean_error - dense.mean_error) < 0.2
    # The sparse twin is a pure function of the seed.
    again = evaluate_robust_error(
        model, quantizer, test, 0.02, num_samples=5, seed=13, backend="sparse"
    )
    assert again.errors == sparse.errors


def test_fused_evaluation_leaves_model_weights_clean(trained, blob_data):
    """Per-draw patching restores every parameter tensor exactly."""
    _, test = blob_data
    model, quantizer = trained
    before = [param.data.copy() for param in model.parameters()]
    evaluate_robust_error(model, quantizer, test, 0.02, num_samples=3, seed=31)
    for param, original in zip(model.parameters(), before):
        np.testing.assert_array_equal(param.data, original)


def test_fused_field_precision_mismatch_raises(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    wrong = make_error_fields(model.num_parameters(), 4, 1, seed=2)
    with pytest.raises(ValueError, match="precision"):
        evaluate_robust_error(model, quantizer, test, 0.01, error_fields=wrong)


def test_batch_size_must_be_positive(trained, blob_data):
    from repro.eval.robust_error import model_error_and_confidence
    from repro.quant.qat import model_weight_arrays

    _, test = blob_data
    model, quantizer = trained
    weights = model_weight_arrays(model)
    for bad in (0, -4):
        with pytest.raises(ValueError, match="batch_size"):
            model_error_and_confidence(model, weights, test, bad)
        with pytest.raises(ValueError, match="batch_size"):
            evaluate_clean_error(model, quantizer, test, batch_size=bad)
        with pytest.raises(ValueError, match="batch_size"):
            evaluate_robust_error(model, quantizer, test, 0.01, batch_size=bad)
