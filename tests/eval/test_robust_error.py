"""Tests for robust test error (RErr) evaluation."""

import numpy as np
import pytest

from repro.biterror import ChipProfile, make_error_fields
from repro.core import Trainer, TrainerConfig
from repro.eval import evaluate_clean_error, evaluate_profiled_error, evaluate_robust_error
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    trainer = Trainer(model, quantizer, TrainerConfig(epochs=12, batch_size=16, seed=1))
    trainer.train(train)
    return model, quantizer


def test_clean_error_matches_zero_rate_result(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    clean = evaluate_clean_error(model, quantizer, test)
    result = evaluate_robust_error(model, quantizer, test, bit_error_rate=0.0)
    assert np.isclose(result.clean_error, clean)
    assert result.mean_error == result.clean_error
    assert result.std_error == 0.0


def test_robust_error_fields_and_statistics(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    result = evaluate_robust_error(
        model, quantizer, test, bit_error_rate=0.01, num_samples=6, seed=3
    )
    assert len(result.errors) == 6
    assert result.mean_error >= 0.0
    assert result.max_error >= result.mean_error
    assert 0.0 < result.confidence_clean <= 1.0
    assert 0.0 < result.confidence_perturbed <= 1.0


def test_robust_error_increases_with_rate(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    fields = make_error_fields(model.num_parameters(), 8, 8, seed=11)
    low = evaluate_robust_error(model, quantizer, test, 0.001, error_fields=fields)
    high = evaluate_robust_error(model, quantizer, test, 0.1, error_fields=fields)
    assert high.mean_error >= low.mean_error


def test_shared_fields_give_reproducible_results(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    fields = make_error_fields(model.num_parameters(), 8, 4, seed=5)
    a = evaluate_robust_error(model, quantizer, test, 0.02, error_fields=fields)
    b = evaluate_robust_error(model, quantizer, test, 0.02, error_fields=fields)
    np.testing.assert_allclose(a.errors, b.errors)


def test_profiled_evaluation_over_offsets(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    chip = ChipProfile(rows=256, columns=128, column_alignment=0.5, seed=9)
    result = evaluate_profiled_error(
        model, quantizer, test, chip, rate=0.02, offsets=(0, 1000, 2000)
    )
    assert len(result.errors) == 3
    assert result.mean_error >= 0.0


def test_no_quantizer_clean_error(trained, blob_data):
    _, test = blob_data
    model, _ = trained
    error = evaluate_clean_error(model, None, test)
    assert 0.0 <= error <= 1.0
