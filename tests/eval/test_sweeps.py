"""Tests for the RErr sweep helpers."""

import numpy as np
import pytest

from repro.core import Trainer, TrainerConfig
from repro.eval import compare_models, rerr_sweep
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    Trainer(model, quantizer, TrainerConfig(epochs=10, batch_size=16, seed=1)).train(train)
    return model, quantizer


def test_rerr_sweep_structure(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rates = [0.0, 0.01, 0.05]
    curve = rerr_sweep(model, quantizer, test, rates, num_fields=3, seed=2, name="m")
    assert curve.rates == rates
    assert len(curve.results) == 3
    assert len(curve.mean_errors()) == 3
    assert 0.0 <= curve.clean_error <= 1.0
    rows = curve.as_rows()
    assert len(rows) == 3
    assert rows[1]["bit_error_rate"] == 0.01
    assert rows[0]["model"] == "m"


def test_rerr_sweep_zero_rate_matches_clean(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    curve = rerr_sweep(model, quantizer, test, [0.0], num_fields=2)
    assert curve.mean_errors()[0] == curve.clean_error


def test_compare_models_shares_fields_per_precision(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    curves = compare_models(
        {"a": (model, quantizer), "b": (model, quantizer)},
        test,
        rates=[0.02],
        num_fields=3,
        seed=5,
    )
    assert set(curves) == {"a", "b"}
    # Identical model + identical shared fields -> identical results.
    np.testing.assert_allclose(curves["a"].mean_errors(), curves["b"].mean_errors())
