"""Tests for the RErr sweep helpers."""

import numpy as np
import pytest

from repro.core import Trainer, TrainerConfig
from repro.eval import compare_models, rerr_sweep
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    Trainer(model, quantizer, TrainerConfig(epochs=10, batch_size=16, seed=1)).train(train)
    return model, quantizer


def test_rerr_sweep_structure(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rates = [0.0, 0.01, 0.05]
    curve = rerr_sweep(model, quantizer, test, rates, num_fields=3, seed=2, name="m")
    assert curve.rates == rates
    assert len(curve.results) == 3
    assert len(curve.mean_errors()) == 3
    assert 0.0 <= curve.clean_error <= 1.0
    rows = curve.as_rows()
    assert len(rows) == 3
    assert rows[1]["bit_error_rate"] == 0.01
    assert rows[0]["model"] == "m"


def test_rerr_sweep_zero_rate_matches_clean(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    curve = rerr_sweep(model, quantizer, test, [0.0], num_fields=2)
    assert curve.mean_errors()[0] == curve.clean_error


def test_rerr_sweep_quantizes_and_clean_evaluates_once(trained, blob_data, monkeypatch):
    """The sweep hoists quantization and clean evaluation out of the rate loop."""
    import repro.eval.robust_error as robust_error
    import repro.eval.sweeps as sweeps_module

    _, test = blob_data
    model, quantizer = trained
    quantize_calls = {"n": 0}
    real_quantize = sweeps_module.quantize_model

    def counting_quantize(*args, **kwargs):
        quantize_calls["n"] += 1
        return real_quantize(*args, **kwargs)

    eval_calls = {"n": 0}
    real_eval = robust_error.model_error_and_confidence

    def counting_eval(*args, **kwargs):
        eval_calls["n"] += 1
        return real_eval(*args, **kwargs)

    monkeypatch.setattr(sweeps_module, "quantize_model", counting_quantize)
    monkeypatch.setattr(robust_error, "quantize_model", counting_quantize)
    # Every engine evaluation — clean and perturbed — funnels through
    # repro.eval.robust_error.model_error_and_confidence (looked up at call
    # time), so patching that one attribute counts them all.
    monkeypatch.setattr(robust_error, "model_error_and_confidence", counting_eval)

    rates = [0.0, 0.01, 0.02]
    num_fields = 3
    curve = sweeps_module.rerr_sweep(
        model, quantizer, test, rates, num_fields=num_fields, seed=0
    )
    assert quantize_calls["n"] == 1
    # Exactly one clean evaluation plus one perturbed evaluation per
    # (non-zero rate, field) pair — nothing is re-done per rate.
    assert eval_calls["n"] == 1 + 2 * num_fields
    assert len(curve.results) == len(rates)

    # compare_models quantizes each model exactly once, sharing the result
    # between field creation and the sweep itself.
    quantize_calls["n"] = 0
    sweeps_module.compare_models(
        {"a": (model, quantizer), "b": (model, quantizer)}, test, rates=[0.01]
    )
    assert quantize_calls["n"] == 2


@pytest.mark.slow
def test_rerr_sweep_sparse_backend_consistent_with_dense(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rates = [0.0, 0.01, 0.05]
    dense = rerr_sweep(
        model, quantizer, test, rates, num_fields=4, seed=3, backend="dense"
    )
    sparse = rerr_sweep(
        model, quantizer, test, rates, num_fields=4, seed=3, backend="sparse"
    )
    # Zero rate is the clean model in both backends — exactly equal.
    assert sparse.mean_errors()[0] == dense.mean_errors()[0]
    assert sparse.clean_error == dense.clean_error
    np.testing.assert_allclose(sparse.mean_errors(), dense.mean_errors(), atol=0.2)


def test_sparse_sweep_fields_are_seed_only_across_grids(trained, blob_data):
    """Same seed + different sub-0.05 rate grids must evaluate the same chips."""
    _, test = blob_data
    model, quantizer = trained
    a = rerr_sweep(model, quantizer, test, [0.0, 0.01], num_fields=3, seed=4,
                   backend="sparse")
    b = rerr_sweep(model, quantizer, test, [0.01, 0.02], num_fields=3, seed=4,
                   backend="sparse")
    assert a.results[1].errors == b.results[0].errors


def test_compare_models_shares_fields_per_precision(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    curves = compare_models(
        {"a": (model, quantizer), "b": (model, quantizer)},
        test,
        rates=[0.02],
        num_fields=3,
        seed=5,
    )
    assert set(curves) == {"a", "b"}
    # Identical model + identical shared fields -> identical results.
    np.testing.assert_allclose(curves["a"].mean_errors(), curves["b"].mean_errors())


def test_compare_models_sparse_backend_consistent_with_dense(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    pairs = {"a": (model, quantizer)}
    dense = compare_models(pairs, test, rates=[0.0, 0.02], num_fields=3, seed=5,
                           backend="dense")
    sparse = compare_models(pairs, test, rates=[0.0, 0.02], num_fields=3, seed=5,
                            backend="sparse")
    # Zero rate is the clean model in both backends — exactly equal.
    assert sparse["a"].mean_errors()[0] == dense["a"].mean_errors()[0]
    np.testing.assert_allclose(
        sparse["a"].mean_errors(), dense["a"].mean_errors(), atol=0.2
    )
    # The sparse twin is a pure function of the seed.
    again = compare_models(pairs, test, rates=[0.0, 0.02], num_fields=3, seed=5,
                           backend="sparse")
    assert again["a"].results[1].errors == sparse["a"].results[1].errors


def test_profiled_sweep_quantizes_and_clean_evaluates_once(
    trained, blob_data, monkeypatch
):
    """Quantization + clean eval are hoisted out of the rate/offset loops."""
    import repro.eval.robust_error as robust_error
    import repro.eval.sweeps as sweeps_module
    from repro.biterror import ChipProfile
    from repro.eval import profiled_sweep

    _, test = blob_data
    model, quantizer = trained
    chip = ChipProfile(rows=128, columns=64, seed=6)

    quantize_calls = {"n": 0}
    real_quantize = sweeps_module.quantize_model

    def counting_quantize(*args, **kwargs):
        quantize_calls["n"] += 1
        return real_quantize(*args, **kwargs)

    eval_calls = {"n": 0}
    real_eval = robust_error.model_error_and_confidence

    def counting_eval(*args, **kwargs):
        eval_calls["n"] += 1
        return real_eval(*args, **kwargs)

    monkeypatch.setattr(sweeps_module, "quantize_model", counting_quantize)
    monkeypatch.setattr(robust_error, "quantize_model", counting_quantize)
    monkeypatch.setattr(robust_error, "model_error_and_confidence", counting_eval)

    rates = [0.005, 0.01, 0.02]
    offsets = (0, 1000)
    curve = profiled_sweep(
        model, quantizer, test, chip, rates, offsets=offsets
    )
    assert quantize_calls["n"] == 1
    # One hoisted clean evaluation plus one perturbed evaluation per
    # (rate, offset) cell — nothing is re-done per rate or per offset.
    assert eval_calls["n"] == 1 + len(rates) * len(offsets)
    assert len(curve.results) == len(rates)
    assert all(len(r.errors) == len(offsets) for r in curve.results)


def test_evaluate_profiled_error_accepts_hoisted_inputs(trained, blob_data):
    """Precomputed quantized weights / clean stats skip the per-call work."""
    import repro.eval.robust_error as robust_error
    from repro.biterror import ChipProfile
    from repro.quant.qat import quantize_model

    _, test = blob_data
    model, quantizer = trained
    chip = ChipProfile(rows=128, columns=64, seed=8)
    quantized = quantize_model(model, quantizer)
    clean_weights = quantizer.dequantize(quantized)
    clean_stats = robust_error.model_error_and_confidence(
        model, clean_weights, test, 64
    )
    hoisted = robust_error.evaluate_profiled_error(
        model, quantizer, test, chip, 0.02, offsets=(0, 500),
        quantized=quantized, clean_stats=clean_stats,
    )
    reference = robust_error.evaluate_profiled_error(
        model, quantizer, test, chip, 0.02, offsets=(0, 500)
    )
    assert hoisted.errors == reference.errors
    assert hoisted.clean_error == reference.clean_error
    assert hoisted.confidence_perturbed == reference.confidence_perturbed
