"""Tests for the fused evaluation seam: batch plans and delta weight patching."""

import numpy as np
import pytest

from repro.biterror import BitErrorField
from repro.data import ArrayDataset
from repro.eval.fast_eval import BatchPlan, DeltaWeightPatcher, evaluate_on_plan
from repro.models import MLP
from repro.nn.losses import confidences
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model, swap_weights


@pytest.fixture
def setup(blob_data):
    _, test = blob_data
    model = MLP(
        in_features=test.input_shape[0], num_classes=test.num_classes,
        hidden=(16,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    return model, quantizer, quantized, test


# -- BatchPlan ----------------------------------------------------------------


def test_batch_plan_covers_dataset_with_reference_boundaries(blob_data):
    _, test = blob_data
    plan = BatchPlan(test, batch_size=7)
    sizes = [labels.shape[0] for _, labels in plan]
    assert sum(sizes) == len(test) == plan.num_examples
    assert all(size == 7 for size in sizes[:-1])
    assert 1 <= sizes[-1] <= 7
    # Concatenating the plan's batches reconstructs the dataset in order.
    np.testing.assert_array_equal(
        np.concatenate([inputs for inputs, _ in plan]), test.inputs
    )
    np.testing.assert_array_equal(
        np.concatenate([labels for _, labels in plan]), test.labels
    )


def test_batch_plan_slices_are_views(blob_data):
    _, test = blob_data
    plan = BatchPlan(test, batch_size=16)
    for inputs, labels in plan:
        assert inputs.base is test.inputs
        assert labels.base is test.labels


def test_batch_plan_validates_batch_size(blob_data):
    _, test = blob_data
    for bad in (0, -1):
        with pytest.raises(ValueError, match="batch_size"):
            BatchPlan(test, batch_size=bad)


def test_evaluate_on_plan_matches_reference_loop(setup):
    model, quantizer, quantized, test = setup
    weights = quantizer.dequantize(quantized)
    batch_size = 13

    # The seed-era loop: fancy-index batching, per-batch accumulation.
    errors = 0
    total = 0
    confidence_sum = 0.0
    model.eval()
    with swap_weights(model, weights):
        for start in range(0, len(test), batch_size):
            index = np.arange(start, min(start + batch_size, len(test)))
            inputs, labels = test[index]
            logits = model(inputs)
            errors += int((logits.argmax(axis=1) != labels).sum())
            total += labels.shape[0]
            confidence_sum += float(confidences(logits).sum())
    model.train(True)
    reference = (errors / total, confidence_sum / total)

    plan = BatchPlan(test, batch_size=batch_size)
    assert evaluate_on_plan(model, weights, plan) == reference
    # Reusable: a second evaluation over the same plan is identical.
    assert evaluate_on_plan(model, weights, plan) == reference


def test_evaluate_on_plan_restores_training_mode(setup):
    model, quantizer, quantized, test = setup
    weights = quantizer.dequantize(quantized)
    plan = BatchPlan(test, batch_size=32)
    model.train(True)
    evaluate_on_plan(model, weights, plan)
    assert model.training
    model.eval()
    evaluate_on_plan(model, weights, plan)
    assert not model.training


def test_empty_dataset_plan_evaluates_to_zero(setup):
    model, quantizer, quantized, test = setup
    weights = quantizer.dequantize(quantized)
    empty = ArrayDataset(
        np.empty((0,) + test.input_shape), np.empty(0, dtype=np.int64),
        num_classes=test.num_classes,
    )
    assert evaluate_on_plan(model, weights, BatchPlan(empty, 8)) == (0.0, 0.0)


# -- DeltaWeightPatcher -------------------------------------------------------


def _corruption(quantized, p=0.02, seed=3, backend="dense"):
    field = BitErrorField(
        quantized.num_weights, quantized.scheme.precision,
        np.random.default_rng(seed), backend=backend,
    )
    return field.apply_to_quantized(quantized, p, return_positions=True)


@pytest.mark.parametrize("backend", ["dense", "sparse"])
def test_patched_quantized_matches_full_dequantize(setup, backend):
    model, quantizer, quantized, _ = setup
    clean = quantizer.dequantize(quantized)
    corrupted, touched = _corruption(quantized, backend=backend)
    expected = quantizer.dequantize(corrupted)
    patcher = DeltaWeightPatcher(quantized, clean)
    with patcher.patched_quantized(corrupted, touched) as weights:
        for patched, full in zip(weights, expected):
            np.testing.assert_array_equal(patched, full)
    # Exact restoration after the context exits.
    for restored, original in zip(patcher.weights, quantizer.dequantize(quantized)):
        np.testing.assert_array_equal(restored, original)


def test_patched_delta_codes_match_patched_quantized(setup):
    model, quantizer, quantized, _ = setup
    clean = quantizer.dequantize(quantized)
    flat = quantized.flat_codes()
    field = BitErrorField(
        quantized.num_weights, quantized.scheme.precision,
        np.random.default_rng(5), backend="sparse",
    )
    touched, values = field.delta_apply(flat, 0.02)
    corrupted = field.apply_to_quantized(quantized, 0.02)
    patcher = DeltaWeightPatcher(quantized, clean)
    with patcher.patched(touched, values) as via_values:
        snapshot = [w.copy() for w in via_values]
    with patcher.patched_quantized(corrupted, touched) as via_quantized:
        for a, b in zip(snapshot, via_quantized):
            np.testing.assert_array_equal(a, b)


def test_patcher_restores_on_exception(setup):
    model, quantizer, quantized, _ = setup
    clean = quantizer.dequantize(quantized)
    snapshot = [w.copy() for w in clean]
    corrupted, touched = _corruption(quantized)
    patcher = DeltaWeightPatcher(quantized, clean)
    with pytest.raises(RuntimeError, match="boom"):
        with patcher.patched_quantized(corrupted, touched):
            raise RuntimeError("boom")
    for restored, original in zip(clean, snapshot):
        np.testing.assert_array_equal(restored, original)


def test_patcher_empty_touched_is_a_noop(setup):
    model, quantizer, quantized, _ = setup
    clean = quantizer.dequantize(quantized)
    snapshot = [w.copy() for w in clean]
    patcher = DeltaWeightPatcher(quantized, clean)
    empty = np.empty(0, dtype=np.int64)
    with patcher.patched(empty, empty.astype(np.uint8)) as weights:
        for patched, original in zip(weights, snapshot):
            np.testing.assert_array_equal(patched, original)


def test_patcher_validation(setup):
    model, quantizer, quantized, _ = setup
    clean = quantizer.dequantize(quantized)
    patcher = DeltaWeightPatcher(quantized, clean)
    corrupted, touched = _corruption(quantized)
    with pytest.raises(ValueError, match="sorted"):
        with patcher.patched(touched[::-1], touched[::-1].astype(np.uint8)):
            pass
    with pytest.raises(ValueError, match="lie in"):
        with patcher.patched(
            np.array([quantized.num_weights]), np.array([0], dtype=np.uint8)
        ):
            pass
    with pytest.raises(ValueError, match="code values"):
        with patcher.patched(touched, np.empty(touched.size + 1, dtype=np.uint8)):
            pass
    with pytest.raises(ValueError, match="clean tensors"):
        DeltaWeightPatcher(quantized, clean[:-1])
    with pytest.raises(ValueError, match="float64"):
        DeltaWeightPatcher(quantized, [w.astype(np.float32) for w in clean])
