"""Tests for L-infinity weight-noise robustness evaluation."""

import numpy as np
import pytest

from repro.core import Trainer, TrainerConfig
from repro.eval import evaluate_linf_robustness
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant


@pytest.fixture(scope="module")
def trained(blob_data):
    train, _ = blob_data
    model = MLP(
        in_features=train.input_shape[0], num_classes=train.num_classes,
        hidden=(24,), rng=np.random.default_rng(0),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    Trainer(model, quantizer, TrainerConfig(epochs=10, batch_size=16, seed=1)).train(train)
    return model, quantizer


def test_zero_magnitude_equals_clean_error(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rows = evaluate_linf_robustness(model, quantizer, test, [0.0], num_samples=3)
    assert rows[0]["std_error"] == 0.0


def test_one_row_per_magnitude_and_monotone_trend(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    rows = evaluate_linf_robustness(
        model, quantizer, test, [0.0, 0.05, 0.5], num_samples=4, seed=2
    )
    assert len(rows) == 3
    assert rows[-1]["mean_error"] >= rows[0]["mean_error"]


def test_negative_magnitude_raises(trained, blob_data):
    _, test = blob_data
    model, quantizer = trained
    with pytest.raises(ValueError):
        evaluate_linf_robustness(model, quantizer, test, [-0.1])
