"""Fig. 1 — bit error rate and SRAM access energy vs. supply voltage.

Regenerates the voltage sweep of Fig. 1: the bit error rate grows
exponentially as the (normalized) supply voltage is reduced below V_min while
energy per access falls roughly quadratically.
"""

import numpy as np

from conftest import print_table
from repro.biterror import VoltageModel
from repro.utils.tables import Table


def test_fig1_voltage_energy_sweep(benchmark):
    model = VoltageModel()
    voltages = np.linspace(0.75, 1.0, 11)

    rows = benchmark.pedantic(lambda: model.sweep(voltages), rounds=1, iterations=1)

    table = Table(
        title="Fig. 1: bit error rate and normalized energy vs. voltage (V/Vmin)",
        headers=["voltage", "bit error rate (%)", "energy / access"],
        float_digits=4,
    )
    for row in rows:
        table.add_row(row["voltage"], 100.0 * row["bit_error_rate"], row["energy"])
    print_table(table)

    rates = [row["bit_error_rate"] for row in rows]
    energies = [row["energy"] for row in rows]
    # Shape checks: rate decreases and energy increases with voltage.
    assert all(a >= b for a, b in zip(rates, rates[1:]))
    assert all(a <= b for a, b in zip(energies, energies[1:]))
    # Error-free operation at V_min, several percent of errors at 0.75 V_min.
    assert rates[-1] == 0.0
    assert rates[0] > 0.01
    # Headline numbers of Sec. 1: ~30% saving at p = 1%, ~20% at p = 0.1%.
    assert 0.2 <= model.energy_saving(0.01) <= 0.4
    assert 0.1 <= model.energy_saving(0.001) <= 0.3
