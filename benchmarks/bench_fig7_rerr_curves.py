"""Fig. 2 / Fig. 7 — the paper's headline result: RErr vs. bit error rate.

Evaluates the full RErr-vs-p curve for Normal, RQuant, Clipping and RandBET
(8 bit) plus the best 4-bit model.  The paper's shape: the curves are
ordered Normal >= RQuant >= Clipping >= RandBET at high bit error rates,
RErr increases monotonically with p, and the 4-bit curve tracks the 8-bit
curve with a small offset.

Each model's curve is one :func:`repro.eval.sweeps.rerr_sweep` through the
sweep-execution engine (:mod:`repro.runtime`): the model is quantized and
clean-evaluated once per curve and every (rate, field) cell is an engine
job, so the whole figure can be sharded with a ``ParallelExecutor`` or
resumed from a ``ResultStore`` without touching this file.
"""

import numpy as np

from conftest import EVAL_RATES, print_table
from repro.eval import rerr_sweep
from repro.utils.tables import Table


def evaluate_curves(model_suite, test, fields8, fields4):
    curves = {}
    for key, fields in (
        ("normal", fields8),
        ("rquant", fields8),
        ("clipping", fields8),
        ("randbet", fields8),
        ("randbet_4bit", fields4),
    ):
        trained = model_suite[key]
        curve = rerr_sweep(
            trained.model, trained.quantizer, test, EVAL_RATES,
            error_fields=fields, name=trained.name,
        )
        curves[trained.name] = [100.0 * mean for mean in curve.mean_errors()]
    return curves


def test_fig7_rerr_vs_bit_error_rate(
    benchmark, model_suite, cifar_task, error_fields_8bit, error_fields_4bit
):
    _, test = cifar_task
    curves = benchmark.pedantic(
        lambda: evaluate_curves(model_suite, test, error_fields_8bit, error_fields_4bit),
        rounds=1,
        iterations=1,
    )

    table = Table(
        title="Fig. 2 / Fig. 7: robust test error (%) vs. bit error rate",
        headers=["model"] + [f"p={100 * r:g}%" for r in EVAL_RATES],
    )
    for name, series in curves.items():
        table.add_row(name, *series)
    print_table(table)

    names = list(curves)
    normal, rquant, clipping, randbet = (curves[n] for n in names[:4])
    highest = -1  # index of the largest evaluated rate
    # Ordering at the highest bit error rate (with small slack for noise).
    assert clipping[highest] <= rquant[highest] + 2.0
    assert randbet[highest] <= clipping[highest] + 2.0
    assert randbet[highest] < normal[highest] + 2.0
    # RErr grows (weakly) monotonically with p for the robust model.
    randbet_series = np.array(randbet)
    assert np.all(np.diff(randbet_series) >= -2.0)
    # At p = 0 every model achieves its clean error (finite, below chance).
    assert all(series[0] < 90.0 for series in curves.values())
