"""Table 2 / Table 9 — weight clipping improves robustness; label smoothing hurts.

Trains a ladder of clipping bounds (plus one label-smoothed variant) and
reports clean error, clean/perturbed confidence and RErr.  The paper's shape:
tighter clipping costs a little clean accuracy but reduces RErr at high bit
error rates dramatically, while label smoothing (which removes the pressure
to produce large logits) undoes part of the benefit.
"""

import pytest

from conftest import CLIP_WMAX, print_table, train_simplenet
from repro.eval import evaluate_robust_error
from repro.utils.tables import Table

HIGH_RATE = 0.025
LOW_RATE = 0.005


@pytest.fixture(scope="module")
def clipping_ladder(cifar_task, model_suite):
    """Models trained with different w_max, plus a label-smoothed variant."""
    ladder = {
        "RQUANT (no clipping)": model_suite["rquant"],
        "CLIPPING 0.5": train_simplenet(cifar_task, "CLIPPING 0.5", clip_w_max=0.5),
        f"CLIPPING {CLIP_WMAX}": model_suite["clipping"],
        "CLIPPING 0.15": train_simplenet(cifar_task, "CLIPPING 0.15", clip_w_max=0.15),
        f"CLIPPING {CLIP_WMAX} +LS": train_simplenet(
            cifar_task, "CLIPPING +LS", clip_w_max=CLIP_WMAX, label_smoothing=0.1
        ),
    }
    return ladder


def evaluate_ladder(ladder, test, fields):
    rows = []
    for name, trained in ladder.items():
        low = evaluate_robust_error(
            trained.model, trained.quantizer, test, LOW_RATE, error_fields=fields
        )
        high = evaluate_robust_error(
            trained.model, trained.quantizer, test, HIGH_RATE, error_fields=fields
        )
        rows.append(
            {
                "name": name,
                "clean": 100.0 * high.clean_error,
                "conf_clean": 100.0 * high.confidence_clean,
                "conf_perturbed": 100.0 * high.confidence_perturbed,
                "rerr_low": 100.0 * low.mean_error,
                "rerr_high": 100.0 * high.mean_error,
            }
        )
    return rows


def test_tab2_weight_clipping(benchmark, clipping_ladder, cifar_task, error_fields_8bit):
    _, test = cifar_task
    rows = benchmark.pedantic(
        lambda: evaluate_ladder(clipping_ladder, test, error_fields_8bit),
        rounds=1,
        iterations=1,
    )

    table = Table(
        title="Table 2: weight clipping (and label smoothing) vs. robustness",
        headers=[
            "model",
            "Err (%)",
            "Conf (%)",
            f"Conf p={100 * HIGH_RATE:g}%",
            f"RErr p={100 * LOW_RATE:g}%",
            f"RErr p={100 * HIGH_RATE:g}%",
        ],
    )
    for row in rows:
        table.add_row(
            row["name"], row["clean"], row["conf_clean"], row["conf_perturbed"],
            row["rerr_low"], row["rerr_high"],
        )
    print_table(table)

    by_name = {row["name"]: row for row in rows}
    unclipped = by_name["RQUANT (no clipping)"]
    clipped = by_name[f"CLIPPING {CLIP_WMAX}"]
    smoothed = by_name[f"CLIPPING {CLIP_WMAX} +LS"]
    # Clipping improves high-rate robustness over no clipping.
    assert clipped["rerr_high"] <= unclipped["rerr_high"] + 1e-9
    # Clipping preserves the ability to produce usable confidences (well
    # above the 10-class chance level of 10%).
    assert clipped["conf_clean"] > 30.0
    # Label smoothing lowers clean confidence (by construction).
    assert smoothed["conf_clean"] < clipped["conf_clean"]
