"""Table 17 / App. C.2 — probabilistic guarantee and its empirical stress test.

Computes the Prop. 1 deviation bound for the paper's sample sizes and stress
tests it empirically: the RErr measured with many error patterns should be
close to the RErr measured with few patterns (well within the bound's
excess term).
"""

import numpy as np

from conftest import NUM_ERROR_FIELDS, print_table
from repro.biterror import make_error_fields
from repro.eval import deviation_bound, evaluate_robust_error
from repro.utils.tables import Table

RATE = 0.01
MANY_FIELDS = 50


def test_tab17_guarantee_stress_test(benchmark, model_suite, cifar_task, error_fields_8bit):
    _, test = cifar_task
    trained = model_suite["randbet"]
    num_weights = trained.result.quantized_weights.num_weights
    many_fields = make_error_fields(num_weights, 8, MANY_FIELDS, seed=606)

    def evaluate():
        few = evaluate_robust_error(
            trained.model, trained.quantizer, test, RATE, error_fields=error_fields_8bit
        )
        many = evaluate_robust_error(
            trained.model, trained.quantizer, test, RATE, error_fields=many_fields
        )
        return few, many

    few, many = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    bound_paper_scale = deviation_bound(10**4, 10**6, delta=0.01)
    bound_bench_scale = deviation_bound(len(test), MANY_FIELDS, delta=0.01)

    table = Table(
        title="Table 17: Prop. 1 guarantee and empirical stress test",
        headers=["quantity", "value"],
        float_digits=4,
    )
    table.add_row(f"RErr (%) with l={NUM_ERROR_FIELDS} patterns", 100.0 * few.mean_error)
    table.add_row(f"RErr (%) with l={MANY_FIELDS} patterns", 100.0 * many.mean_error)
    table.add_row("std (%) with many patterns", 100.0 * many.std_error)
    table.add_row("Prop. 1 excess (n=1e4, l=1e6, delta=0.01)", bound_paper_scale)
    table.add_row(f"Prop. 1 excess (n={len(test)}, l={MANY_FIELDS})", bound_bench_scale)
    print_table(table)

    # The paper quotes ~4.1% excess at its scale.
    assert abs(bound_paper_scale - 0.041) < 0.01
    # Empirically, few-pattern and many-pattern estimates agree well within
    # the (loose, small-n) bound.
    assert abs(few.mean_error - many.mean_error) <= bound_bench_scale
