"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The expensive
part — training the standard suite of models (Normal, RQuant, Clipping,
RandBET at 8 and 4 bit) — is done once per session here; the benchmarked
callables are the evaluations that produce the reported numbers.

The scale is deliberately small (synthetic data, reduced SimpleNet, few
epochs) so the whole harness runs on two CPU cores in minutes.  Absolute
numbers therefore differ from the paper; what the benchmarks check and print
is the *shape* of each result (orderings, trends, crossovers), recorded in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np
import pytest

from repro.biterror import BitErrorField, make_error_fields, make_profiled_chips
from repro.core import (
    RandBETConfig,
    RandBETTrainer,
    Trainer,
    TrainerConfig,
    train_robust_model,
)
from repro.core.pipeline import RobustTrainingResult
from repro.data import synthetic_cifar10, synthetic_mnist, train_test_split
from repro.eval import evaluate_robust_error
from repro.quant import FixedPointQuantizer, normal_quantization, rquant
from repro.utils.tables import Table

# ---------------------------------------------------------------------------
# Benchmark-wide configuration (kept small for CPU execution).
# ---------------------------------------------------------------------------

EPOCHS = 25
BATCH_SIZE = 16
WIDTHS = (12, 24)
CONVS_PER_STAGE = 1
SAMPLES_PER_CLASS = 20
NUM_ERROR_FIELDS = 5
CLIP_WMAX = 0.25
TRAIN_BIT_ERROR_RATE = 0.01
# The paper starts injecting bit errors once the clean loss drops below 1.75
# (CIFAR10).  Our synthetic task is fit within a few epochs, so the
# scale-appropriate analogue is a lower threshold: inject errors only once
# the model has essentially converged on the clean objective.
START_LOSS_THRESHOLD = 0.75

#: Bit error rates (fractions) at which RErr curves are evaluated.
EVAL_RATES = [0.0, 0.001, 0.005, 0.01, 0.025]


def print_table(table: Table) -> None:
    """Print a benchmark table with surrounding blank lines so it stands out."""
    print("\n\n" + table.render() + "\n")


@dataclass
class TrainedModel:
    """A trained model bundled with its quantizer and metadata."""

    name: str
    result: RobustTrainingResult

    @property
    def model(self):
        return self.result.model

    @property
    def quantizer(self) -> FixedPointQuantizer:
        return self.result.quantizer

    @property
    def clean_error(self) -> float:
        return self.result.clean_error


@pytest.fixture(scope="session")
def cifar_task():
    """The CIFAR10-like synthetic task (train, test)."""
    dataset = synthetic_cifar10(samples_per_class=SAMPLES_PER_CLASS, image_size=16)
    return train_test_split(dataset, test_fraction=0.25, rng=np.random.default_rng(0))


@pytest.fixture(scope="session")
def mnist_task():
    """The MNIST-like synthetic task (train, test)."""
    dataset = synthetic_mnist(samples_per_class=16, image_size=12)
    return train_test_split(dataset, test_fraction=0.25, rng=np.random.default_rng(1))


def train_simplenet(
    cifar_task,
    name: str,
    precision: int = 8,
    clip_w_max=None,
    bit_error_rate=None,
    quantizer: FixedPointQuantizer | None = None,
    label_smoothing: float = 0.0,
    norm: str = "gn",
    seed: int = 11,
    epochs: int = EPOCHS,
) -> TrainedModel:
    """Train one SimpleNet variant on the CIFAR10-like task."""
    train, test = cifar_task
    result = train_robust_model(
        train,
        test,
        model_name="simplenet",
        widths=WIDTHS,
        convs_per_stage=CONVS_PER_STAGE,
        precision=precision,
        clip_w_max=clip_w_max,
        bit_error_rate=bit_error_rate,
        epochs=epochs,
        batch_size=BATCH_SIZE,
        label_smoothing=label_smoothing,
        norm=norm,
        seed=seed,
        quantizer=quantizer,
        start_loss_threshold=START_LOSS_THRESHOLD,
    )
    return TrainedModel(name=name, result=result)


@pytest.fixture(scope="session")
def model_suite(cifar_task) -> Dict[str, TrainedModel]:
    """The standard model suite used across most tables/figures.

    Keys: ``normal`` (NORMAL quantization), ``rquant`` (robust quantization),
    ``clipping`` (RQuant + weight clipping), ``randbet`` (RQuant + clipping +
    RandBET), plus 4-bit variants of the last two.
    """
    suite: Dict[str, TrainedModel] = {}
    suite["normal"] = train_simplenet(
        cifar_task, "NORMAL", quantizer=FixedPointQuantizer(normal_quantization(8))
    )
    suite["rquant"] = train_simplenet(cifar_task, "RQUANT")
    suite["clipping"] = train_simplenet(cifar_task, f"CLIPPING {CLIP_WMAX}", clip_w_max=CLIP_WMAX)
    suite["randbet"] = train_simplenet(
        cifar_task,
        f"RANDBET {CLIP_WMAX} p={TRAIN_BIT_ERROR_RATE:.0%}",
        clip_w_max=CLIP_WMAX,
        bit_error_rate=TRAIN_BIT_ERROR_RATE,
    )
    suite["clipping_4bit"] = train_simplenet(
        cifar_task, f"CLIPPING {CLIP_WMAX} (4 bit)", precision=4, clip_w_max=CLIP_WMAX
    )
    suite["randbet_4bit"] = train_simplenet(
        cifar_task,
        f"RANDBET {CLIP_WMAX} (4 bit)",
        precision=4,
        clip_w_max=CLIP_WMAX,
        bit_error_rate=TRAIN_BIT_ERROR_RATE,
    )
    return suite


@pytest.fixture(scope="session")
def error_fields_8bit(model_suite) -> List[BitErrorField]:
    """Pre-determined 8-bit error fields shared by every evaluation."""
    num_weights = model_suite["rquant"].result.quantized_weights.num_weights
    return make_error_fields(num_weights, 8, NUM_ERROR_FIELDS, seed=2021)


@pytest.fixture(scope="session")
def error_fields_4bit(model_suite) -> List[BitErrorField]:
    """Pre-determined 4-bit error fields shared by every evaluation."""
    num_weights = model_suite["clipping_4bit"].result.quantized_weights.num_weights
    return make_error_fields(num_weights, 4, NUM_ERROR_FIELDS, seed=2022)


@pytest.fixture(scope="session")
def profiled_chips():
    """The three simulated profiled chips (Fig. 3)."""
    return make_profiled_chips(seed=7, scale=4)


def rerr_percent(trained: TrainedModel, test, rate: float, fields) -> float:
    """Average RErr (in %) of a trained model at bit error rate ``rate``."""
    report = evaluate_robust_error(
        trained.model, trained.quantizer, test, rate, error_fields=fields
    )
    return 100.0 * report.mean_error
