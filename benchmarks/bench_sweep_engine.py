"""Macrobenchmark: serial vs. parallel sweep-engine throughput.

Builds a synthetic RErr grid — one MLP, ``--rates`` bit error rates x
``--fields`` pre-determined error fields — and executes the identical
:class:`~repro.runtime.spec.SweepSpec` through the serial reference executor
and through :class:`~repro.runtime.executors.ParallelExecutor`.  Cell
results are checked for exact equality before any timing is reported, so the
speedup is never bought with divergence.

**Acceptance criterion: >= 2x wall-clock speedup with 4 workers** on the
full synthetic grid (the grid is embarrassingly parallel; the criterion
mostly measures that the context ships once per worker instead of once per
job).  The check is skipped when the host has fewer than 4 CPUs — the
executor degrades gracefully there, but a speedup assertion would only
measure oversubscription.

Run the full benchmark (a few seconds on >= 4 cores)::

    PYTHONPATH=src python benchmarks/bench_sweep_engine.py

Fast smoke mode for CI (tiny grid, no speedup assertion)::

    PYTHONPATH=src python benchmarks/bench_sweep_engine.py --smoke
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.biterror import make_error_fields
from repro.data import make_blob_dataset, train_test_split
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import ParallelExecutor, SerialExecutor, SweepSpec, run_sweep
from repro.utils.tables import Table


def build_spec(args):
    """One synthetic sweep spec (fresh object per run, identical content)."""
    dataset = make_blob_dataset(
        num_classes=6,
        samples_per_class=args.samples,
        num_features=32,
        separation=2.5,
        rng=np.random.default_rng(0),
    )
    _, test = train_test_split(dataset, test_fraction=0.5, rng=np.random.default_rng(1))
    model = MLP(
        in_features=32, num_classes=6, hidden=(args.hidden, args.hidden),
        rng=np.random.default_rng(2),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    fields = make_error_fields(
        quantized.num_weights, 8, args.fields, seed=3, backend="sparse"
    )
    rates = np.linspace(0.002, 0.05, args.rates)
    spec = SweepSpec(test, batch_size=64)
    spec.add_model("mlp", model, quantizer, quantized)
    spec.add_field_set("fields", fields)
    for rate in rates:
        spec.add_field_jobs("mlp", "fields", float(rate))
    return spec


def time_run(args, executor) -> tuple:
    """(seconds, results) for one full sweep through ``executor``."""
    spec = build_spec(args)
    start = time.perf_counter()
    results = run_sweep(spec, executor=executor)
    return time.perf_counter() - start, results


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rates", type=int, default=12,
                        help="number of bit error rates in the grid")
    parser.add_argument("--fields", type=int, default=8,
                        help="number of error fields (chips) per rate")
    parser.add_argument("--samples", type=int, default=800,
                        help="synthetic samples per class")
    parser.add_argument("--hidden", type=int, default=128,
                        help="hidden width of the evaluated MLP")
    parser.add_argument("--workers", type=int, default=4,
                        help="worker processes for the parallel run")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run for CI; skips the speedup check")
    args = parser.parse_args()

    if args.smoke:
        args.rates = min(args.rates, 3)
        args.fields = min(args.fields, 2)
        args.samples = min(args.samples, 60)
        args.hidden = min(args.hidden, 24)
        args.workers = min(args.workers, 2)

    cells = args.rates * args.fields + 1  # + the hoisted clean cell
    print(f"synthetic grid: {args.rates} rates x {args.fields} fields "
          f"({cells} cells), {args.workers} workers, "
          f"host CPUs: {os.cpu_count()}")

    serial_time, serial_results = time_run(args, SerialExecutor())
    parallel_time, parallel_results = time_run(
        args, ParallelExecutor(max_workers=args.workers)
    )

    mismatched = [
        key for key, cell in serial_results.items()
        if parallel_results.get(key) != cell
    ]
    if mismatched or set(serial_results) != set(parallel_results):
        print(f"FAIL: parallel results diverge from serial on "
              f"{len(mismatched) or 'missing'} cells")
        return 1

    speedup = serial_time / max(parallel_time, 1e-12)
    table = Table(
        title="sweep-engine throughput (one full synthetic grid)",
        headers=["executor", "wall [s]", "cells/s", "speedup"],
        float_digits=3,
    )
    table.add_row("serial", serial_time, cells / serial_time, "1.0x")
    table.add_row(f"parallel ({args.workers}w)", parallel_time,
                  cells / parallel_time, f"{speedup:.1f}x")
    print("\n" + table.render() + "\n")

    if args.smoke:
        print("smoke mode: results identical; skipping speedup assertion")
        return 0
    if (os.cpu_count() or 1) < args.workers:
        print(f"only {os.cpu_count()} CPU(s): skipping the >=2x assertion "
              f"(criterion is defined at {args.workers} workers on >= "
              f"{args.workers} cores)")
        return 0
    if speedup < 2.0:
        print(f"FAIL: speedup {speedup:.2f}x below the 2x criterion "
              f"at {args.workers} workers")
        return 1
    print(f"OK: {speedup:.1f}x >= 2x speedup at {args.workers} workers, "
          "results bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
