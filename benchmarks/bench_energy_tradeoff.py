"""Sec. 1 / Sec. 5.4 — the accuracy / energy trade-off and Pareto frontier.

Combines the RErr-vs-p curves of the model suite with the voltage/energy
model of Fig. 1 to answer the paper's headline question: how much SRAM energy
can be saved while keeping the increase in (robust) test error below a
budget?  The paper reports ~20% savings within 1% extra error (8 bit) and
~30% when combined with 4-bit precision.
"""

from conftest import EVAL_RATES, print_table, rerr_percent
from repro.biterror import VoltageModel
from repro.eval import energy_report, pareto_frontier
from repro.utils.tables import Table

ERROR_BUDGET = 5.0  # percentage points of extra RErr allowed at this scale


def build_operating_points(model_suite, test, fields8, fields4, voltage_model):
    points = []
    for key, fields, precision in (
        ("rquant", fields8, 8),
        ("clipping", fields8, 8),
        ("randbet", fields8, 8),
        ("randbet_4bit", fields4, 4),
    ):
        trained = model_suite[key]
        for rate in EVAL_RATES:
            rerr = rerr_percent(trained, test, rate, fields)
            report = energy_report(rate, precision=precision, voltage_model=voltage_model)
            points.append(
                {
                    "model": trained.name,
                    "bit_error_rate": rate,
                    "robust_error": rerr,
                    "energy": report.total_energy,
                    "saving": report.saving,
                }
            )
    return points


def test_energy_tradeoff_and_pareto_frontier(
    benchmark, model_suite, cifar_task, error_fields_8bit, error_fields_4bit
):
    _, test = cifar_task
    voltage_model = VoltageModel()

    points = benchmark.pedantic(
        lambda: build_operating_points(
            model_suite, test, error_fields_8bit, error_fields_4bit, voltage_model
        ),
        rounds=1,
        iterations=1,
    )
    frontier = pareto_frontier(points)

    table = Table(
        title="Energy trade-off: Pareto-optimal operating points (RErr vs. energy)",
        headers=["model", "p (%)", "RErr (%)", "energy (rel.)", "saving (%)"],
    )
    for point in frontier:
        table.add_row(
            point["model"], 100.0 * point["bit_error_rate"], point["robust_error"],
            point["energy"], 100.0 * point["saving"],
        )
    print_table(table)

    # The paper's qualitative claim: within a modest RErr budget over the
    # clean baseline, substantial energy savings are available.
    baseline = min(p["robust_error"] for p in points if p["bit_error_rate"] == 0.0)
    affordable = [p for p in points if p["robust_error"] <= baseline + ERROR_BUDGET]
    best_saving = max(p["saving"] for p in affordable)
    assert best_saving >= 0.15
    # The frontier is non-empty and contains no strictly dominated points.
    assert frontier
    for point in frontier:
        strictly_dominated = any(
            other["robust_error"] < point["robust_error"]
            and other["energy"] < point["energy"]
            for other in points
        )
        assert not strictly_dominated
