"""Macrobenchmark: fused vs. seed training hot path (Alg. 1 throughput).

Every training benchmark of the paper (Tab. 3/4/13/14) is bottlenecked by
the per-step cost of Alg. 1.  The seed path pays, per step, a dense
``(W, m)`` uniform draw for the bit-error injection, two full-model
de-quantizations, and Conv2d contractions routed through ``np.einsum``.
The fused path replaces them with a binomial + distinct-positions sparse
draw (``error_draw="sparse"``, ``O(p * W * m)``), delta de-quantization
(only the touched weights are re-decoded), and reshaped ``np.matmul``
contractions that dispatch to BLAS.

This script measures steps/sec on a ~1M-weight convolutional model at the
paper's training rate ``p = 0.01`` and checks two acceptance criteria:

* **>= 3x RandBET step throughput** with ``error_draw="sparse"`` + delta
  de-quantization + matmul conv vs. the seed path (dense draw + full
  de-quantization + einsum conv);
* the conv matmul path alone is a **measurable win (>= 1.2x)** on the plain
  QAT baseline, where injection plays no role.

Run the full benchmark (~1M weights, a minute or two)::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py

Fast smoke mode for CI (tiny model, no assertions)::

    PYTHONPATH=src python benchmarks/bench_training_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import RandBETConfig, RandBETTrainer
from repro.core.trainer import Trainer, TrainerConfig
from repro.nn import (
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    Sequential,
    conv_contraction,
)
from repro.quant import FixedPointQuantizer, rquant
from repro.telemetry.perf import add_json_argument, perf_row, write_perf_records
from repro.utils.tables import Table

TRAINING_RATE = 0.01
PRECISION = 8


def make_conv_model(widths, in_channels, num_classes, seed=0):
    """A 3x3 conv stack + global average pool classifier at given widths."""
    rng = np.random.default_rng(seed)
    layers = []
    channels = in_channels
    for width in widths:
        layers.append(Conv2d(channels, width, kernel_size=3, padding=1, rng=rng))
        layers.append(ReLU())
        channels = width
    layers.extend(
        [GlobalAvgPool2d(), Flatten(), Linear(channels, num_classes, rng=rng)]
    )
    return Sequential(*layers)


def make_batch(batch_size, in_channels, image_size, num_classes, seed=1):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(0.0, 1.0, size=(batch_size, in_channels, image_size, image_size))
    labels = rng.integers(0, num_classes, size=batch_size)
    return inputs, labels


def make_qat_trainer(args):
    model = make_conv_model(args.widths, args.channels, args.classes, seed=0)
    config = TrainerConfig(
        epochs=1,
        batch_size=args.batch,
        learning_rate=0.01,
        seed=3,
    )
    return Trainer(model, FixedPointQuantizer(rquant(PRECISION)), config)


def make_randbet_trainer(args, error_draw):
    model = make_conv_model(args.widths, args.channels, args.classes, seed=0)
    config = RandBETConfig(
        epochs=1,
        batch_size=args.batch,
        learning_rate=0.01,
        seed=3,
        bit_error_rate=TRAINING_RATE,
        start_loss_threshold=float("inf"),
        error_draw=error_draw,
    )
    return RandBETTrainer(model, FixedPointQuantizer(rquant(PRECISION)), config)


def time_interleaved(configs, inputs, labels, steps, warmup=2):
    """Median seconds/step per named configuration.

    The configurations are stepped in interleaved rounds — one step of every
    configuration per round — so machine-load drift over the run biases all
    of them equally instead of whichever happened to be timed last.
    """
    for _, trainer, contraction in configs:
        with conv_contraction(contraction):
            for _ in range(warmup):
                trainer.train_step(inputs, labels)
    samples = {name: [] for name, _, _ in configs}
    for _ in range(steps):
        for name, trainer, contraction in configs:
            with conv_contraction(contraction):
                start = time.perf_counter()
                trainer.train_step(inputs, labels)
                samples[name].append(time.perf_counter() - start)
    return {name: float(np.median(times)) for name, times in samples.items()}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--widths", type=int, nargs="+", default=[96, 256, 448],
                        help="conv stage widths (default reaches ~1.25M weights)")
    parser.add_argument("--channels", type=int, default=8,
                        help="input channels (default 8)")
    parser.add_argument("--image-size", type=int, default=4,
                        help="square input resolution (default 4)")
    parser.add_argument("--classes", type=int, default=10)
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--steps", type=int, default=7,
                        help="timed steps per configuration")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run for CI; skips the speedup checks")
    add_json_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        args.widths = [16, 24]
        args.steps = 2

    probe = make_conv_model(args.widths, args.channels, args.classes, seed=0)
    num_weights = sum(p.data.size for p in probe.parameters())
    print(f"model: conv widths {args.widths}, W = {num_weights:,} weights x "
          f"m = {PRECISION} bits, batch {args.batch} @ "
          f"{args.image_size}x{args.image_size}, p = {TRAINING_RATE}, "
          f"{args.steps} timed step(s)")

    configs = [
        ("qat_einsum", make_qat_trainer(args), "einsum"),
        ("qat_matmul", make_qat_trainer(args), "matmul"),
        ("seed", make_randbet_trainer(args, "dense"), "einsum"),
        ("dense_matmul", make_randbet_trainer(args, "dense"), "matmul"),
        ("fused", make_randbet_trainer(args, "sparse"), "matmul"),
    ]
    inputs, labels = make_batch(args.batch, args.channels, args.image_size, args.classes)
    seconds = time_interleaved(configs, inputs, labels, args.steps)
    for name, trainer, _ in configs:
        if isinstance(trainer, RandBETTrainer):
            assert trainer.bit_errors_active, (
                f"{name}: injection never activated; timing is vacuous"
            )
    qat_einsum = seconds["qat_einsum"]
    qat_matmul = seconds["qat_matmul"]
    seed_path = seconds["seed"]
    dense_matmul = seconds["dense_matmul"]
    fused = seconds["fused"]

    qat_speedup = qat_einsum / max(qat_matmul, 1e-12)
    fused_speedup = seed_path / max(fused, 1e-12)
    table = Table(
        title="training throughput (median per step)",
        headers=["configuration", "ms/step", "steps/sec", "vs. seed"],
        float_digits=2,
    )
    rows = [
        ("QAT (einsum conv)", qat_einsum, ""),
        ("QAT (matmul conv)", qat_matmul, f"{qat_speedup:.2f}x"),
        ("RandBET seed (dense draw, einsum conv)", seed_path, "1.00x"),
        ("RandBET dense draw, matmul conv", dense_matmul,
         f"{seed_path / max(dense_matmul, 1e-12):.2f}x"),
        ("RandBET fused (sparse draw + delta dequant, matmul conv)", fused,
         f"{fused_speedup:.2f}x"),
    ]
    for name, per_step, speedup in rows:
        table.add_row(name, per_step * 1e3, 1.0 / max(per_step, 1e-12), speedup)
    print("\n" + table.render() + "\n")

    write_perf_records(args.json_path, [
        perf_row("training_throughput", "randbet_fused_speedup", fused_speedup,
                 criterion=">= 3x", smoke=args.smoke),
        perf_row("training_throughput", "qat_matmul_speedup", qat_speedup,
                 criterion=">= 1.2x", smoke=args.smoke),
    ])

    if args.smoke:
        print("smoke mode: skipping speedup assertions")
        return 0
    failures = []
    if fused_speedup < 3.0:
        failures.append(
            f"RandBET fused speedup {fused_speedup:.2f}x below the 3x criterion"
        )
    if qat_speedup < 1.2:
        failures.append(
            f"QAT matmul conv speedup {qat_speedup:.2f}x below the 1.2x criterion"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"OK: RandBET fused {fused_speedup:.2f}x (>= 3x), "
          f"QAT matmul conv {qat_speedup:.2f}x (>= 1.2x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
