"""Fig. 4 — the weight error distribution induced by random bit errors.

For each quantization scheme, injects bit errors at p = 2.5% into the trained
weights and reports the maximum and mean absolute weight error.  The paper's
observations: with per-layer asymmetric quantization the worst-case error is
bounded by the (smaller) per-layer range; with clipping the *absolute* errors
shrink further but the errors *relative to w_max* do not — clipping does not
trivially help by scaling.
"""

import numpy as np

from conftest import print_table
from repro.biterror import inject_into_quantized
from repro.quant import FixedPointQuantizer, normal_quantization, global_quantization, rquant
from repro.quant.qat import model_weight_arrays, quantize_model
from repro.utils.tables import Table

RATE = 0.025
NUM_DRAWS = 5


def weight_error_statistics(model, quantizer, rng):
    quantized = quantize_model(model, quantizer)
    clean = np.concatenate([w.reshape(-1) for w in quantizer.dequantize(quantized)])
    max_abs_weight = float(np.abs(clean).max())
    abs_errors = []
    for _ in range(NUM_DRAWS):
        corrupted = inject_into_quantized(quantized, RATE, rng)
        perturbed = np.concatenate([w.reshape(-1) for w in quantizer.dequantize(corrupted)])
        abs_errors.append(np.abs(perturbed - clean))
    abs_errors = np.stack(abs_errors)
    return {
        "max_abs_error": float(abs_errors.max()),
        "mean_abs_error": float(abs_errors.mean()),
        "mean_relative_error": float(abs_errors.mean() / max_abs_weight),
        "max_abs_weight": max_abs_weight,
    }


def test_fig4_quantization_and_bit_errors(benchmark, model_suite):
    rquant_model = model_suite["rquant"]
    clipping_model = model_suite["clipping"]
    rng = np.random.default_rng(2024)

    def evaluate():
        rows = []
        schemes = [
            ("global, q_max = max|w|", rquant_model, FixedPointQuantizer(global_quantization(8))),
            ("per-layer (NORMAL)", rquant_model, FixedPointQuantizer(normal_quantization(8))),
            ("per-layer asymmetric (RQUANT)", rquant_model, FixedPointQuantizer(rquant(8))),
            ("RQUANT + CLIPPING (trained)", clipping_model, clipping_model.quantizer),
        ]
        for name, trained, quantizer in schemes:
            stats = weight_error_statistics(trained.model, quantizer, rng)
            rows.append((name, stats))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title=f"Fig. 4: weight errors under p = {100 * RATE:g}% bit errors",
        headers=["scheme", "max |w|", "max abs error", "mean abs error", "mean rel. error"],
        float_digits=4,
    )
    for name, stats in rows:
        table.add_row(
            name, stats["max_abs_weight"], stats["max_abs_error"],
            stats["mean_abs_error"], stats["mean_relative_error"],
        )
    print_table(table)

    stats = dict(rows)
    # Global quantization has the largest worst-case error (range spans the
    # whole model); per-layer asymmetric reduces it.
    assert stats["per-layer asymmetric (RQUANT)"]["max_abs_error"] <= stats[
        "global, q_max = max|w|"
    ]["max_abs_error"] + 1e-9
    # Clipping shrinks the absolute errors (weights are smaller)...
    assert stats["RQUANT + CLIPPING (trained)"]["mean_abs_error"] <= stats[
        "per-layer asymmetric (RQUANT)"
    ]["mean_abs_error"] + 1e-9
    # ...but not the errors relative to the maximum weight (Sec. 4.2).
    assert stats["RQUANT + CLIPPING (trained)"]["mean_relative_error"] >= 0.5 * stats[
        "per-layer asymmetric (RQUANT)"
    ]["mean_relative_error"]
