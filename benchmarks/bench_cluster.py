"""Macrobenchmark: serial vs. distributed (cluster) sweep execution.

Builds a Fig. 7-shaped synthetic RErr grid — one MLP, ``--rates`` bit error
rates x ``--fields`` pre-determined error fields — and executes the identical
:class:`~repro.runtime.spec.SweepSpec` through the serial reference executor
and through :class:`~repro.cluster.ClusterExecutor`, which shards the job
groups into an atomically-leased filesystem queue served by ``--workers``
local worker daemons (separate processes, coordinating through the run
directory alone — exactly how a multi-host fleet would).

Before any timing is reported the merged cluster results are checked for
**exact** equality with the serial run (cell for cell, plus one
duplicate-free canonical ``results.jsonl`` line per cell), so the speedup is
never bought with divergence or double counting.

**Acceptance criterion: >= 2x wall-clock speedup with 4 worker daemons** on
the full synthetic grid.  The check is skipped when the host has fewer CPUs
than workers — the subsystem degrades gracefully there, but the assertion
would only measure oversubscription.

Run the full benchmark (tens of seconds on >= 4 cores)::

    PYTHONPATH=src python benchmarks/bench_cluster.py

Fast smoke mode for CI (tiny grid, 2 daemons, completion + bit-parity
asserted, no speedup assertion)::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke

Chaos mode (``--poison``) injects a deterministic, permanently-raising fault
into one queue item and gates on graceful degradation instead of full
parity: the sweep must terminate with every *surviving* cell bit-identical
to serial and duplicate-free, the poisoned item dead-lettered after exactly
``max_attempts`` attempts with a readable traceback, and a
``failure-report.json`` artifact written into the run directory::

    PYTHONPATH=src python benchmarks/bench_cluster.py --smoke --poison
"""

from __future__ import annotations

import argparse
import os
import shutil
import tempfile
import time

import numpy as np

from repro import telemetry
from repro.biterror import make_error_fields
from repro.cluster import (
    ClusterExecutor,
    JobQueue,
    RetryPolicy,
    group_item_id,
    load_failure_report,
)
from repro.data import make_blob_dataset, train_test_split
from repro.faults import FaultPlan, FaultRule
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import (
    ResultStore,
    SerialExecutor,
    SweepSpec,
    group_jobs,
    run_sweep,
)
from repro.telemetry.perf import add_json_argument, perf_row, write_perf_records
from repro.utils.serialization import read_jsonl
from repro.utils.tables import Table


def build_spec(args):
    """One synthetic sweep spec (fresh object per run, identical content)."""
    dataset = make_blob_dataset(
        num_classes=6,
        samples_per_class=args.samples,
        num_features=32,
        separation=2.5,
        rng=np.random.default_rng(0),
    )
    _, test = train_test_split(dataset, test_fraction=0.5, rng=np.random.default_rng(1))
    model = MLP(
        in_features=32, num_classes=6, hidden=(args.hidden, args.hidden),
        rng=np.random.default_rng(2),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    fields = make_error_fields(
        quantized.num_weights, 8, args.fields, seed=3, backend="sparse"
    )
    rates = np.linspace(0.002, 0.05, args.rates)
    spec = SweepSpec(test, batch_size=64)
    spec.add_model("mlp", model, quantizer, quantized)
    spec.add_field_set("fields", fields)
    for rate in rates:
        spec.add_field_jobs("mlp", "fields", float(rate))
    return spec


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rates", type=int, default=24,
                        help="number of bit error rates in the grid")
    parser.add_argument("--fields", type=int, default=8,
                        help="number of error fields (chips) per rate")
    parser.add_argument("--samples", type=int, default=2400,
                        help="synthetic samples per class")
    parser.add_argument("--hidden", type=int, default=256,
                        help="hidden width of the evaluated MLP")
    parser.add_argument("--workers", type=int, default=4,
                        help="local worker daemons for the cluster run")
    parser.add_argument("--run-dir", default=None,
                        help="cluster run directory (default: fresh temp dir)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run for CI; 2 daemons, parity asserted, "
                             "no speedup assertion")
    parser.add_argument("--poison", action="store_true",
                        help="inject a permanent fault into one queue item and "
                             "gate on graceful degradation: surviving cells "
                             "bit-identical, poison dead-lettered, failure "
                             "report written")
    parser.add_argument("--max-attempts", type=int, default=3,
                        help="retry budget per item in --poison mode")
    parser.add_argument("--telemetry", action="store_true",
                        help="record telemetry into the run dir during the "
                             "cluster leg (the serial timing stays untouched)")
    add_json_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        args.rates = min(args.rates, 3)
        args.fields = min(args.fields, 2)
        args.samples = min(args.samples, 60)
        args.hidden = min(args.hidden, 24)
        args.workers = min(args.workers, 2)

    cells = args.rates * args.fields + 1  # + the hoisted clean cell
    print(f"synthetic grid: {args.rates} rates x {args.fields} fields "
          f"({cells} cells), {args.workers} worker daemon(s), "
          f"host CPUs: {os.cpu_count()}")

    serial_spec = build_spec(args)
    start = time.perf_counter()
    serial_results = run_sweep(serial_spec, executor=SerialExecutor())
    serial_time = time.perf_counter() - start

    run_dir = args.run_dir or tempfile.mkdtemp(prefix="bench-cluster-")
    try:
        if args.telemetry:
            # Enabled only now, after the serial leg timed clean: the
            # coordinator records here and the manifest flag makes every
            # worker daemon record its own sink into the same run dir.
            telemetry.configure(run_dir, name="bench-coordinator")
        retry = None
        fault_plan = None
        poison_id = None
        poison_keys: set = set()
        if args.poison:
            poison_group = group_jobs(serial_spec.jobs)[-1]
            poison_id = group_item_id(poison_group)
            poison_keys = {job.content_key for job in poison_group}
            retry = RetryPolicy(max_attempts=args.max_attempts,
                                backoff_base=0.05, backoff_max=0.2)
            fault_plan = FaultPlan([
                FaultRule(seam="execute", kind="exception", match=poison_id,
                          times=None, note="bench --poison"),
            ])
            print(f"poisoning item {poison_id[:12]} ({len(poison_keys)} "
                  f"cell(s)) with a permanent InjectedFault; retry budget "
                  f"{retry.max_attempts} attempt(s)")
        executor = ClusterExecutor(
            run_dir=run_dir,
            max_workers=args.workers,
            lease_timeout=30.0,
            poll_interval=0.02,
            retry=retry,
            fault_plan=fault_plan,
        )
        start = time.perf_counter()
        cluster_results = run_sweep(build_spec(args), executor=executor)
        cluster_time = time.perf_counter() - start
        if args.telemetry:
            telemetry.disable()

        # -- exactness gates (before any timing is reported) ------------------
        # In --poison mode the poisoned cells are *expected* casualties; the
        # gate is graceful degradation, not full parity.
        expected = {
            key: cell for key, cell in serial_results.items()
            if key not in poison_keys
        }
        mismatched = [
            key for key, cell in expected.items()
            if cluster_results.get(key) != cell
        ]
        if mismatched or set(expected) != set(cluster_results):
            print(f"FAIL: cluster results diverge from serial on "
                  f"{len(mismatched) or 'missing'} cells")
            return 1
        store = ResultStore(run_dir)
        if any(store.get(k) != cell for k, cell in expected.items()):
            print("FAIL: merged canonical store diverges from the serial run")
            return 1
        store_records = read_jsonl(os.path.join(run_dir, "results.jsonl"))
        keys = [record["key"] for record in store_records]
        if len(keys) != len(set(keys)) or set(keys) != set(expected):
            print(f"FAIL: canonical results.jsonl is not duplicate-free and "
                  f"complete ({len(keys)} lines, {len(set(keys))} distinct, "
                  f"{len(expected)} expected)")
            return 1
        if args.poison:
            queue = JobQueue(run_dir)
            if queue.failed_ids() != [poison_id]:
                print(f"FAIL: dead-letter set {queue.failed_ids()} != "
                      f"[{poison_id}]")
                return 1
            failure = queue.failure_record(poison_id).get("failure") or {}
            if (failure.get("exc_type") != "InjectedFault"
                    or failure.get("attempts") != args.max_attempts
                    or "InjectedFault" not in (failure.get("traceback") or "")):
                print(f"FAIL: malformed failure record: {failure}")
                return 1
            report = load_failure_report(run_dir, queue)
            report.write(os.path.join(run_dir, "failure-report.json"))
            print("dead-letter report (failure-report.json):\n"
                  + report.summary())
    finally:
        if args.run_dir is None:
            shutil.rmtree(run_dir, ignore_errors=True)

    speedup = serial_time / max(cluster_time, 1e-12)
    table = Table(
        title="cluster sweep throughput (one full synthetic grid)",
        headers=["executor", "wall [s]", "cells/s", "speedup"],
        float_digits=3,
    )
    table.add_row("serial", serial_time, cells / serial_time, "1.0x")
    table.add_row(f"cluster ({args.workers} daemons)", cluster_time,
                  cells / cluster_time, f"{speedup:.1f}x")
    print("\n" + table.render() + "\n")

    write_perf_records(args.json_path, [
        perf_row("cluster", "cluster_speedup", speedup,
                 criterion=">= 2x at 4 daemons", workers=args.workers,
                 cells=cells, smoke=args.smoke),
        perf_row("cluster", "serial_wall_s", serial_time, smoke=args.smoke),
        perf_row("cluster", "cluster_wall_s", cluster_time, smoke=args.smoke),
    ])

    if args.poison:
        print("poison mode: sweep degraded gracefully — surviving cells "
              "bit-identical, poison dead-lettered; skipping speedup "
              "assertion")
        return 0
    if args.smoke:
        print("smoke mode: sweep completed, results bit-identical to serial; "
              "skipping speedup assertion")
        return 0
    if (os.cpu_count() or 1) < args.workers:
        print(f"only {os.cpu_count()} CPU(s): skipping the >=2x assertion "
              f"(criterion is defined at {args.workers} daemons on >= "
              f"{args.workers} cores)")
        return 0
    if speedup < 2.0:
        print(f"FAIL: speedup {speedup:.2f}x below the 2x criterion "
              f"at {args.workers} worker daemons")
        return 1
    print(f"OK: {speedup:.1f}x >= 2x speedup at {args.workers} worker daemons, "
          "results bit-identical, merge duplicate-free")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
