"""Macrobenchmark: fused vs. reference RErr evaluation hot path (chip draws/sec).

RErr — the paper's central metric — averages test error over ~50 simulated
chips per (model, rate) cell, so sweep cost is dominated by the per-draw
inner loop of ``evaluate_robust_error``.  The reference (seed-era) data flow
pays, per draw, a dense ``O(W * m)`` injection, a full-model de-quantization
and a re-batching of the test set.  The fused path replaces them with
``O(errors)`` corrupted-code deltas (``InjectionBackend.delta_apply``),
in-place patching of a clean de-quantization computed once per call
(``DeltaWeightPatcher``) and mini-batches hoisted once per call
(``BatchPlan``) — per-draw cost scales with the *perturbation*, not the
model.

This script measures chip draws/sec on a ~1.25M-weight convolutional model
at the paper's rate ``p = 0.01`` with 50 draws and checks the acceptance
criterion:

* **>= 3x chip draws/sec** for the fused path (sparse order-statistics
  fields + delta patching) vs. the reference path (dense fields + full
  de-quantization per draw, ``fused=False``);
* the fused path is **bit-identical** to the reference on shared fields
  (asserted on every timed reference draw, in smoke mode too).

It also reports the fused single-pass encode speedup (the shared cost of
QAT and every sweep's hoisted quantization) and the peak-memory effect of
chunked batched injection (``iter_apply_fields_batch(chunk_size=...)``).

Run the full benchmark (a minute or so; the dense reference fields take
``--ref-draws * W * m * 8`` bytes, ~80 MB each at the default scale)::

    PYTHONPATH=src python benchmarks/bench_eval_throughput.py

Fast smoke mode for CI (tiny model, parity asserted, no speedup checks)::

    PYTHONPATH=src python benchmarks/bench_eval_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import time
import tracemalloc

import numpy as np

from repro.biterror import make_error_fields
from repro.biterror.random_errors import apply_fields_batch, iter_apply_fields_batch
from repro.data import ArrayDataset
from repro.eval.robust_error import evaluate_robust_error, model_error_and_confidence
from repro.nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, ReLU, Sequential
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.fixed_point import QuantizationScheme, encode_array
from repro.quant.qat import model_weight_arrays, quantize_model
from repro.telemetry.perf import add_json_argument, perf_row, write_perf_records
from repro.utils.tables import Table

EVAL_RATE = 0.01
PRECISION = 8


def make_conv_model(widths, in_channels, num_classes, seed=0):
    """A 3x3 conv stack + global average pool classifier at given widths."""
    rng = np.random.default_rng(seed)
    layers = []
    channels = in_channels
    for width in widths:
        layers.append(Conv2d(channels, width, kernel_size=3, padding=1, rng=rng))
        layers.append(ReLU())
        channels = width
    layers.extend(
        [GlobalAvgPool2d(), Flatten(), Linear(channels, num_classes, rng=rng)]
    )
    return Sequential(*layers)


def make_dataset(examples, in_channels, image_size, num_classes, seed=1):
    rng = np.random.default_rng(seed)
    inputs = rng.normal(0.0, 1.0, size=(examples, in_channels, image_size, image_size))
    labels = rng.integers(0, num_classes, size=examples)
    return ArrayDataset(inputs, labels, num_classes=num_classes)


def reference_encode(weights, q_min, q_max, scheme):
    """The seed-era elementwise-temporary encode chain (ground truth)."""
    weights = np.asarray(weights, dtype=np.float64)
    levels = scheme.levels
    if scheme.asymmetric:
        values = (weights - q_min) / (q_max - q_min) * 2.0 - 1.0
    else:
        values = weights / max(abs(q_min), abs(q_max))
    values = np.clip(values, -1.0, 1.0)
    scaled = values * levels
    integers = np.rint(scaled) if scheme.rounding else np.trunc(scaled)
    integers = np.clip(integers, -levels, levels).astype(np.int64)
    codes = integers + levels if scheme.unsigned else np.mod(integers, scheme.num_codes)
    return codes.astype(np.uint8 if scheme.precision <= 8 else np.uint16)


def timed_call(fn, *args, **kwargs):
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def evaluate_config(model, quantizer, dataset, fields, batch, fused, hoisted):
    quantized, clean_stats = hoisted
    return evaluate_robust_error(
        model,
        quantizer,
        dataset,
        EVAL_RATE,
        error_fields=fields,
        batch_size=batch,
        quantized=quantized,
        clean_stats=clean_stats,
        fused=fused,
    )


def bench_encode(model, reps):
    """Fused vs. reference single-pass encode over the model's weight arrays."""
    scheme = QuantizationScheme(precision=PRECISION)
    arrays = model_weight_arrays(model)
    ranges = [(float(a.min()), float(a.max() + 1e-6)) for a in arrays]
    for array, (lo, hi) in zip(arrays, ranges):
        np.testing.assert_array_equal(
            encode_array(array, lo, hi, scheme), reference_encode(array, lo, hi, scheme)
        )
    samples = {"reference": [], "fused": []}
    for _ in range(reps):
        start = time.perf_counter()
        for array, (lo, hi) in zip(arrays, ranges):
            reference_encode(array, lo, hi, scheme)
        samples["reference"].append(time.perf_counter() - start)
        start = time.perf_counter()
        for array, (lo, hi) in zip(arrays, ranges):
            encode_array(array, lo, hi, scheme)
        samples["fused"].append(time.perf_counter() - start)
    return {name: float(np.median(times)) for name, times in samples.items()}


def bench_chunked_memory(fields, quantized):
    """Peak traced memory: materialized chip set vs. chunked streaming."""
    peaks = {}
    checksums = {}
    tracemalloc.start()
    batch = apply_fields_batch(fields, quantized, EVAL_RATE)
    checksums["materialized"] = sum(int(q.flat_codes().sum()) for q in batch)
    _, peaks["materialized"] = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    del batch
    tracemalloc.start()
    total = 0
    for corrupted in iter_apply_fields_batch(fields, quantized, EVAL_RATE, chunk_size=4):
        total += int(corrupted.flat_codes().sum())
    checksums["chunked"] = total
    _, peaks["chunked"] = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert checksums["materialized"] == checksums["chunked"]
    return peaks


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--widths", type=int, nargs="+", default=[96, 256, 448],
                        help="conv stage widths (default reaches ~1.25M weights)")
    parser.add_argument("--channels", type=int, default=8)
    parser.add_argument("--image-size", type=int, default=4)
    parser.add_argument("--classes", type=int, default=10)
    parser.add_argument("--examples", type=int, default=2,
                        help="evaluation examples (a tiny calibration set)")
    parser.add_argument("--batch", type=int, default=2)
    parser.add_argument("--draws", type=int, default=50,
                        help="simulated chips for the fused (sparse) timing")
    parser.add_argument("--ref-draws", type=int, default=8,
                        help="dense chips for the reference timing (each "
                             "holds a W x m float64 threshold field)")
    parser.add_argument("--encode-reps", type=int, default=9)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run for CI; keeps the bit-parity "
                             "assertion, skips the speedup checks")
    add_json_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        args.widths = [16, 24]
        args.draws = 4
        args.ref_draws = 2
        args.encode_reps = 3

    model = make_conv_model(args.widths, args.channels, args.classes, seed=0)
    num_weights = sum(p.data.size for p in model.parameters())
    quantizer = FixedPointQuantizer(rquant(PRECISION))
    dataset = make_dataset(args.examples, args.channels, args.image_size, args.classes)
    print(f"model: conv widths {args.widths}, W = {num_weights:,} weights x "
          f"m = {PRECISION} bits, p = {EVAL_RATE}, {args.examples} examples @ "
          f"batch {args.batch}, {args.draws} fused draws / "
          f"{args.ref_draws} reference draws")

    # Hoisted once, exactly like the sweep drivers do: the timing below is
    # pure per-draw work (plus, for the fused path, its one clean decode).
    quantized = quantize_model(model, quantizer)
    clean_weights = quantizer.dequantize(quantized)
    clean_stats = model_error_and_confidence(
        model, clean_weights, dataset, args.batch
    )
    hoisted = (quantized, clean_stats)

    dense_fields = make_error_fields(
        num_weights, PRECISION, args.ref_draws, seed=7, backend="dense"
    )
    sparse_fields = make_error_fields(
        num_weights, PRECISION, args.draws, seed=7, backend="sparse"
    )

    # Warmup (BLAS initialisation, decode-table caches).
    for fused in (False, True):
        evaluate_config(model, quantizer, dataset, dense_fields[:1], args.batch,
                        fused, hoisted)

    reference, reference_s = timed_call(
        evaluate_config, model, quantizer, dataset, dense_fields, args.batch,
        False, hoisted,
    )
    fused_dense, fused_dense_s = timed_call(
        evaluate_config, model, quantizer, dataset, dense_fields, args.batch,
        True, hoisted,
    )
    fused_sparse, fused_sparse_s = timed_call(
        evaluate_config, model, quantizer, dataset, sparse_fields, args.batch,
        True, hoisted,
    )

    # Bit-parity on the shared dense fields — the fused path must be an
    # optimization, not a semantic change (checked in smoke mode too).
    assert fused_dense.errors == reference.errors, "fused errors diverged"
    assert fused_dense.confidence_perturbed == reference.confidence_perturbed, (
        "fused confidences diverged"
    )

    ref_rate = args.ref_draws / reference_s
    dense_rate = args.ref_draws / fused_dense_s
    sparse_rate = args.draws / fused_sparse_s
    speedup = sparse_rate / ref_rate

    table = Table(
        title="RErr evaluation throughput (chip draws/sec)",
        headers=["configuration", "ms/draw", "draws/sec", "vs. reference"],
        float_digits=2,
    )
    rows = [
        ("reference (dense fields, full dequantize per draw)",
         reference_s / args.ref_draws, ref_rate, "1.00x"),
        ("fused (same dense fields, delta patching)",
         fused_dense_s / args.ref_draws, dense_rate,
         f"{dense_rate / ref_rate:.2f}x"),
        ("fused (sparse fields + delta patching)",
         fused_sparse_s / args.draws, sparse_rate, f"{speedup:.2f}x"),
    ]
    for name, per_draw, rate, factor in rows:
        table.add_row(name, per_draw * 1e3, rate, factor)
    print("\n" + table.render())

    encode = bench_encode(model, args.encode_reps)
    encode_speedup = encode["reference"] / max(encode["fused"], 1e-12)
    print(f"\nfused single-pass encode: {encode['fused'] * 1e3:.2f} ms vs. "
          f"reference {encode['reference'] * 1e3:.2f} ms per full-model "
          f"quantize ({encode_speedup:.2f}x, bit-identical)")

    peaks = bench_chunked_memory(sparse_fields, quantized)
    print(f"chunked injection peak memory ({args.draws} chips, chunk_size=4): "
          f"{peaks['chunked'] / 1e6:.1f} MB streamed vs. "
          f"{peaks['materialized'] / 1e6:.1f} MB materialized "
          f"({peaks['materialized'] / max(peaks['chunked'], 1):.1f}x smaller peak)")

    write_perf_records(args.json_path, [
        perf_row("eval_throughput", "fused_eval_speedup", speedup,
                 criterion=">= 3x", weights=num_weights, smoke=args.smoke),
        perf_row("eval_throughput", "encode_speedup", encode_speedup,
                 smoke=args.smoke),
        perf_row("eval_throughput", "chunked_peak_ratio",
                 peaks["materialized"] / max(peaks["chunked"], 1),
                 criterion="> 1x", smoke=args.smoke),
    ])

    if args.smoke:
        print("\nsmoke mode: bit-parity asserted, skipping speedup assertions")
        return 0
    failures = []
    if speedup < 3.0:
        failures.append(
            f"fused eval speedup {speedup:.2f}x below the 3x criterion"
        )
    if peaks["chunked"] >= peaks["materialized"]:
        failures.append(
            "chunked injection peak memory is not below the materialized peak"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"\nOK: fused eval {speedup:.2f}x (>= 3x), bit-identical on shared "
          f"fields; encode {encode_speedup:.2f}x; chunked peak "
          f"{peaks['materialized'] / max(peaks['chunked'], 1):.1f}x smaller")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
