"""Table 4 / Table 12 — RandBET improves robustness beyond clipping.

Evaluates RQuant, Clipping and RandBET (8 and 4 bit) at increasing bit error
rates.  The paper's shape: for small rates clipping is sufficient, but at the
highest rates RandBET gives a clear additional reduction in RErr, and the
effect is more pronounced at 4-bit precision.
"""

from conftest import print_table, rerr_percent
from repro.utils.tables import Table

RATES = [0.005, 0.01, 0.025]


def test_tab4_randbet(benchmark, model_suite, cifar_task, error_fields_8bit, error_fields_4bit):
    _, test = cifar_task

    def evaluate():
        rows = []
        for key, fields in (
            ("rquant", error_fields_8bit),
            ("clipping", error_fields_8bit),
            ("randbet", error_fields_8bit),
            ("clipping_4bit", error_fields_4bit),
            ("randbet_4bit", error_fields_4bit),
        ):
            trained = model_suite[key]
            rerrs = [rerr_percent(trained, test, rate, fields) for rate in RATES]
            rows.append((trained.name, 100.0 * trained.clean_error, rerrs))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 4: RandBET vs. Clipping vs. RQuant (8 and 4 bit)",
        headers=["model", "Err (%)"] + [f"RErr p={100 * r:g}%" for r in RATES],
    )
    for name, clean, rerrs in rows:
        table.add_row(name, clean, *rerrs)
    print_table(table)

    by_name = {name: rerrs for name, _, rerrs in rows}
    names = [name for name, _, _ in rows]
    rquant_high = by_name[names[0]][-1]
    clipping_high = by_name[names[1]][-1]
    randbet_high = by_name[names[2]][-1]
    # Shape at the highest rate: RQuant >= Clipping >= RandBET (with slack for
    # the small scale of the benchmark).
    assert clipping_high <= rquant_high + 2.0
    assert randbet_high <= clipping_high + 2.0
    # RandBET clearly beats plain RQuant at the highest rate.
    assert randbet_high < rquant_high
