"""Table 14 / App. G.7 — clipping and RandBET also work on residual networks.

Trains a small ResNet with RQuant only, with clipping, and with clipping +
RandBET, and compares RErr.  The paper's shape: the recipe transfers to
ResNet architectures, with RandBET again giving the lowest RErr at the
highest bit error rate.
"""

import pytest

from conftest import (
    BATCH_SIZE,
    EPOCHS,
    START_LOSS_THRESHOLD,
    TRAIN_BIT_ERROR_RATE,
    print_table,
    TrainedModel,
)
from repro.biterror import make_error_fields
from repro.core import train_robust_model
from repro.eval import evaluate_robust_error
from repro.utils.tables import Table

RATES = [0.005, 0.025]
RESNET_KWARGS = dict(model_name="resnet", widths=(8, 16), blocks_per_stage=1)
# The small ResNet has far fewer channels than the SimpleNet used elsewhere,
# so the clipping bound is relaxed accordingly (the paper likewise tunes
# w_max per architecture, App. G.7).
RESNET_CLIP_WMAX = 0.5


def train_resnet(cifar_task, name, **kwargs) -> TrainedModel:
    train, test = cifar_task
    result = train_robust_model(
        train, test, epochs=EPOCHS, batch_size=BATCH_SIZE, seed=17,
        start_loss_threshold=START_LOSS_THRESHOLD, **RESNET_KWARGS, **kwargs
    )
    return TrainedModel(name=name, result=result)


@pytest.fixture(scope="module")
def resnet_models(cifar_task):
    return {
        "RQUANT": train_resnet(cifar_task, "ResNet RQUANT", clip_w_max=None, bit_error_rate=None),
        "CLIPPING": train_resnet(
            cifar_task,
            f"ResNet CLIPPING {RESNET_CLIP_WMAX}",
            clip_w_max=RESNET_CLIP_WMAX,
            bit_error_rate=None,
        ),
        # The tiny ResNet trains less stably under injected bit errors than
        # SimpleNet, so RandBET uses half the training bit error rate here
        # (the paper likewise picks the training p per architecture).
        "RANDBET": train_resnet(
            cifar_task,
            f"ResNet RANDBET {RESNET_CLIP_WMAX}",
            clip_w_max=RESNET_CLIP_WMAX,
            bit_error_rate=TRAIN_BIT_ERROR_RATE / 2,
        ),
    }


def test_tab14_resnet_robustness(benchmark, resnet_models, cifar_task):
    _, test = cifar_task
    num_weights = resnet_models["RQUANT"].result.quantized_weights.num_weights
    fields = make_error_fields(num_weights, 8, 5, seed=31)

    def evaluate():
        rows = []
        for key in ("RQUANT", "CLIPPING", "RANDBET"):
            trained = resnet_models[key]
            rerrs = [
                100.0
                * evaluate_robust_error(
                    trained.model, trained.quantizer, test, rate, error_fields=fields
                ).mean_error
                for rate in RATES
            ]
            rows.append((trained.name, 100.0 * trained.clean_error, rerrs))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 14: ResNet — RQuant vs. Clipping vs. RandBET",
        headers=["model", "Err (%)"] + [f"RErr p={100 * r:g}%" for r in RATES],
    )
    for name, clean, rerrs in rows:
        table.add_row(name, clean, *rerrs)
    print_table(table)

    results = {name: rerrs for name, _, rerrs in rows}
    names = [name for name, _, _ in rows]
    # Shape at the highest rate: robust training does not hurt and usually helps.
    assert results[names[2]][-1] <= results[names[0]][-1] + 2.0
    assert results[names[1]][-1] <= results[names[0]][-1] + 2.0
