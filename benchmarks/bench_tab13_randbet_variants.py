"""Table 13 — RandBET variants (curricular and alternating schedules).

Trains the standard RandBET recipe and its two variants discussed in
App. G.4: curricular (ramping the training bit error rate) and alternating
(separate clean/perturbed updates with a projection that keeps the
quantization range from growing).  The paper finds both variants perform
slightly worse than, or on par with, plain RandBET — the benchmark checks
that neither variant is dramatically better, i.e. plain RandBET remains a
sound default.
"""

import numpy as np
import pytest

from conftest import (
    BATCH_SIZE,
    CLIP_WMAX,
    CONVS_PER_STAGE,
    EPOCHS,
    START_LOSS_THRESHOLD,
    TRAIN_BIT_ERROR_RATE,
    WIDTHS,
    print_table,
    rerr_percent,
    TrainedModel,
)
from repro.core import RandBETConfig, RandBETTrainer
from repro.core.pipeline import RobustTrainingResult
from repro.models import build_model
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.utils.tables import Table

RATES = [0.005, 0.01]


def train_variant(cifar_task, variant: str) -> TrainedModel:
    train, test = cifar_task
    model = build_model(
        "simplenet",
        in_channels=3,
        num_classes=train.num_classes,
        widths=WIDTHS,
        convs_per_stage=CONVS_PER_STAGE,
        rng=np.random.default_rng(11),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    config = RandBETConfig(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        clip_w_max=CLIP_WMAX,
        bit_error_rate=TRAIN_BIT_ERROR_RATE,
        variant=variant,
        start_loss_threshold=START_LOSS_THRESHOLD,
        seed=11,
    )
    trainer = RandBETTrainer(model, quantizer, config)
    history = trainer.train(train, test)
    clean_error = trainer.evaluate(test).error
    result = RobustTrainingResult(
        model=model,
        quantizer=quantizer,
        quantized_weights=quantize_model(model, quantizer),
        history=history,
        clean_error=clean_error,
        config=config,
    )
    return TrainedModel(name=f"RandBET ({variant})", result=result)


@pytest.fixture(scope="module")
def variant_models(cifar_task):
    return {
        "curricular": train_variant(cifar_task, "curricular"),
        "alternating": train_variant(cifar_task, "alternating"),
    }


def test_tab13_randbet_variants(
    benchmark, model_suite, variant_models, cifar_task, error_fields_8bit
):
    _, test = cifar_task
    models = {
        "RandBET (standard)": model_suite["randbet"],
        "RandBET (curricular)": variant_models["curricular"],
        "RandBET (alternating)": variant_models["alternating"],
    }

    def evaluate():
        rows = []
        for name, trained in models.items():
            rerrs = [rerr_percent(trained, test, rate, error_fields_8bit) for rate in RATES]
            rows.append((name, 100.0 * trained.clean_error, rerrs))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 13: RandBET variants",
        headers=["variant", "Err (%)"] + [f"RErr p={100 * r:g}%" for r in RATES],
    )
    for name, clean, rerrs in rows:
        table.add_row(name, clean, *rerrs)
    print_table(table)

    results = {name: rerrs for name, _, rerrs in rows}
    standard_high = results["RandBET (standard)"][-1]
    # Plain RandBET is competitive with (not dramatically worse than) both variants.
    assert standard_high <= results["RandBET (curricular)"][-1] + 5.0
    assert standard_high <= results["RandBET (alternating)"][-1] + 5.0
    # All variants actually train (finite, reasonable clean error).
    assert all(clean < 60.0 for _, clean, _ in rows)
