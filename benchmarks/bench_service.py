"""Macrobenchmark: the multi-tenant sweep service versus solo serial runs.

Registers two differently-shaped synthetic sweeps as tenants of one
:class:`~repro.service.ServiceRegistry` (alice at twice bob's fair-share
priority; bob on the ``kv`` queue backend so both storage protocols run in
one pass) and drains the service with ``--workers`` real worker processes
(``python -m repro.service worker``, separate interpreters, coordinating
through the service directory alone — exactly how a multi-host fleet
would).

Before any timing is reported the per-tenant merged stores are checked for
**exact** equality with a solo :class:`~repro.runtime.SerialExecutor` run
of each tenant's spec — cell for cell, duplicate-free canonical
``results.jsonl``, and a clean integrity audit of every tenant run
directory — so multi-tenancy is never bought with divergence, double
counting, or cross-tenant leakage.

Run the full benchmark::

    PYTHONPATH=src python benchmarks/bench_service.py

Fast smoke mode for CI (tiny grids, 2 worker processes)::

    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro import telemetry
from repro.biterror import make_error_fields
from repro.cluster import JobQueue
from repro.cluster.integrity import verify_run_dir
from repro.data import make_blob_dataset, train_test_split
from repro.models import MLP
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model
from repro.runtime import ResultStore, SerialExecutor, SweepSpec, run_sweep
from repro.service import ServiceRegistry, service_status
from repro.telemetry.perf import add_json_argument, perf_row, write_perf_records
from repro.telemetry.report import merged_run_metrics
from repro.utils.serialization import read_jsonl
from repro.utils.tables import Table


def build_spec(args, rates, chip_rate=None, seed_base=0):
    """One synthetic tenant spec; ``seed_base`` differentiates tenants."""
    dataset = make_blob_dataset(
        num_classes=4,
        samples_per_class=args.samples,
        num_features=24,
        separation=2.5,
        rng=np.random.default_rng(seed_base),
    )
    _, test = train_test_split(
        dataset, test_fraction=0.5, rng=np.random.default_rng(seed_base + 1)
    )
    model = MLP(
        in_features=24, num_classes=4, hidden=(args.hidden,),
        rng=np.random.default_rng(seed_base + 2),
    )
    quantizer = FixedPointQuantizer(rquant(8))
    quantized = quantize_model(model, quantizer)
    fields = make_error_fields(
        quantized.num_weights, 8, args.fields, seed=seed_base + 3, backend="sparse"
    )
    spec = SweepSpec(test, batch_size=64)
    spec.add_model("mlp", model, quantizer, quantized)
    spec.add_field_set("fields", fields)
    for rate in rates:
        spec.add_field_jobs("mlp", "fields", float(rate))
    if chip_rate is not None:
        from repro.biterror import ChipProfile

        profile = ChipProfile(
            rows=128, columns=64, column_alignment=0.4, seed=seed_base + 4
        )
        spec.add_chip("chips", profile)
        spec.add_chip_jobs("mlp", "chips", float(chip_rate), offsets=(0, 500))
    return spec


def tenant_grid(args, tenant_id):
    """The per-tenant spec builders: same content every call."""
    if tenant_id == "alice":
        rates = np.linspace(0.004, 0.04, args.rates)
        return build_spec(args, rates, seed_base=0)
    rates = np.linspace(0.002, 0.02, max(args.rates - 1, 1))
    return build_spec(args, rates, chip_rate=0.02, seed_base=100)


def spawn_worker(service_dir, worker_id, seed):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                       "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "worker", service_dir,
            "--id", worker_id, "--seed", str(seed), "--poll", "0.02",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rates", type=int, default=10,
                        help="bit error rates in tenant alice's grid")
    parser.add_argument("--fields", type=int, default=4,
                        help="error fields (chips) per rate")
    parser.add_argument("--samples", type=int, default=600,
                        help="synthetic samples per class")
    parser.add_argument("--hidden", type=int, default=96,
                        help="hidden width of the evaluated MLPs")
    parser.add_argument("--workers", type=int, default=2,
                        help="service worker processes to attach")
    parser.add_argument("--service-dir", default=None,
                        help="service directory (default: fresh temp dir)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run for CI; 2 workers, exactness and "
                             "clean-audit gates only")
    parser.add_argument("--telemetry", action="store_true",
                        help="record telemetry (submission + per-worker "
                             "dispatch sinks) into the service dir")
    add_json_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        args.rates = min(args.rates, 3)
        args.fields = min(args.fields, 2)
        args.samples = min(args.samples, 60)
        args.hidden = min(args.hidden, 24)
        args.workers = min(args.workers, 2)

    # -- solo serial reference runs (the exactness baseline) ------------------
    solo = {}
    serial_time = 0.0
    for tenant_id in ("alice", "bob"):
        start = time.perf_counter()
        solo[tenant_id] = run_sweep(
            tenant_grid(args, tenant_id), executor=SerialExecutor()
        )
        serial_time += time.perf_counter() - start
    cells = sum(len(results) for results in solo.values())
    print(f"two tenants, {cells} cells total, {args.workers} service "
          f"worker process(es), host CPUs: {os.cpu_count()}")

    service_dir = args.service_dir or tempfile.mkdtemp(prefix="bench-service-")
    try:
        registry = ServiceRegistry(service_dir)
        if args.telemetry:
            telemetry.configure(service_dir, name="bench-submitter")
        # bob rides the kv backend so one smoke exercises both queue
        # storage protocols end to end.
        registry.submit("alice", tenant_grid(args, "alice"), priority=2.0,
                        lease_timeout=30.0)
        registry.submit("bob", tenant_grid(args, "bob"), priority=1.0,
                        lease_timeout=30.0, queue_backend="kv")
        if args.telemetry:
            telemetry.disable()

        start = time.perf_counter()
        procs = [
            spawn_worker(service_dir, f"w{index}", seed=index)
            for index in range(args.workers)
        ]
        failed = False
        for proc in procs:
            out, _ = proc.communicate(timeout=600)
            print(out.rstrip())
            failed = failed or proc.returncode != 0
        service_time = time.perf_counter() - start
        if failed:
            print("FAIL: a service worker process exited non-zero")
            return 1

        # -- exactness gates (before any timing is reported) ------------------
        for tenant_id in ("alice", "bob"):
            tenant = registry.get(tenant_id)
            if tenant is None or tenant.state != "done":
                print(f"FAIL: tenant {tenant_id} is "
                      f"{tenant.state if tenant else 'missing'}, not done")
                return 1
            run_dir = registry.tenant_run_dir(tenant_id)
            if not JobQueue(run_dir).is_drained():
                print(f"FAIL: tenant {tenant_id} queue is not drained")
                return 1
            expected = solo[tenant_id]
            store = ResultStore(run_dir)
            if len(store) != len(expected) or any(
                store.get(key) != cell for key, cell in expected.items()
            ):
                print(f"FAIL: tenant {tenant_id} store diverges from its "
                      f"solo serial run")
                return 1
            records = read_jsonl(os.path.join(run_dir, "results.jsonl"))
            keys = [r["key"] for r in records if isinstance(r.get("key"), str)]
            if len(keys) != len(set(keys)) or set(keys) != set(expected):
                print(f"FAIL: tenant {tenant_id} results.jsonl is not "
                      f"duplicate-free and complete ({len(keys)} lines, "
                      f"{len(set(keys))} distinct, {len(expected)} expected)")
                return 1
            report = verify_run_dir(run_dir)
            if not report.clean:
                print(f"FAIL: tenant {tenant_id} integrity audit found "
                      f"{len(report.findings)} finding(s):")
                for finding in report.findings:
                    print(f"  [{finding.check}] {finding.detail}")
                return 1
        status = service_status(service_dir)
        print(f"per-tenant stores exact vs solo serial, duplicate-free, "
              f"audits clean; live workers at exit: "
              f"{len(status['workers'])}")
        if args.telemetry:
            counters = merged_run_metrics(service_dir).get("counters") or {}
            dispatch = {
                name: int(value)
                for name, value in sorted(counters.items())
                if name.startswith("service.")
            }
            print("service dispatch counters: " + (
                ", ".join(f"{k.split('.', 1)[1]}={v}" for k, v in dispatch.items())
                or "none recorded"
            ))
    finally:
        if args.service_dir is None:
            shutil.rmtree(service_dir, ignore_errors=True)

    speedup = serial_time / max(service_time, 1e-12)
    table = Table(
        title="service throughput (two tenants, one shared worker fleet)",
        headers=["topology", "wall [s]", "cells/s", "speedup"],
        float_digits=3,
    )
    table.add_row("solo serial (sum of tenants)", serial_time,
                  cells / serial_time, "1.0x")
    table.add_row(f"service ({args.workers} workers)", service_time,
                  cells / service_time, f"{speedup:.1f}x")
    print("\n" + table.render() + "\n")

    write_perf_records(args.json_path, [
        perf_row("service", "service_speedup", speedup,
                 workers=args.workers, cells=cells, smoke=args.smoke),
        perf_row("service", "serial_wall_s", serial_time, smoke=args.smoke),
        perf_row("service", "service_wall_s", service_time, smoke=args.smoke),
    ])

    if args.smoke:
        print("smoke mode: both tenants drained, stores bit-identical to "
              "solo serial, audits clean; no speedup assertion")
        return 0
    print(f"OK: {speedup:.1f}x vs summed solo serial at {args.workers} "
          f"service workers; per-tenant stores exact and audits clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
