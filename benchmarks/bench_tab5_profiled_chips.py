"""Table 5 / Table 15 — RandBET generalizes to (simulated) profiled chips.

The RandBET model, trained only on uniform random bit errors, is evaluated on
the simulated profiled chips: chip 1 (uniform errors, matching the error
model) and chip 2 (column-aligned, 0-to-1 biased errors).  The paper's shape:
RErr stays moderate on both chips — clearly better than the non-robust RQuant
baseline — even though chip 2's error distribution differs strongly from the
training distribution.

Each (chip, model) pair is one :func:`repro.eval.sweeps.profiled_sweep`
through the sweep-execution engine (:mod:`repro.runtime`): quantization and
the clean evaluation are hoisted out of the rate/placement loops, and every
(rate, offset) cell is an engine job — shardable and resumable like every
other sweep.
"""

from conftest import print_table
from repro.biterror import LinearMemoryMap
from repro.eval import profiled_sweep
from repro.utils.tables import Table

RATES = [0.005, 0.02]
NUM_OFFSETS = 4


def evaluate_chips(model_suite, test, chips):
    rows = []
    for chip_name in ("chip1", "chip2"):
        chip = chips[chip_name]
        offsets = LinearMemoryMap.with_even_offsets(chip, NUM_OFFSETS).offsets
        for key in ("rquant", "randbet"):
            trained = model_suite[key]
            curve = profiled_sweep(
                trained.model, trained.quantizer, test, chip, RATES,
                offsets=offsets, name=trained.name,
            )
            rerrs = [100.0 * mean for mean in curve.mean_errors()]
            rows.append((chip_name, trained.name, rerrs))
    return rows


def test_tab5_profiled_chip_generalization(
    benchmark, model_suite, cifar_task, profiled_chips
):
    _, test = cifar_task
    rows = benchmark.pedantic(
        lambda: evaluate_chips(model_suite, test, profiled_chips), rounds=1, iterations=1
    )

    table = Table(
        title="Table 5: generalization to simulated profiled chips",
        headers=["chip", "model"] + [f"RErr p~{100 * r:g}%" for r in RATES],
    )
    for chip_name, model_name, rerrs in rows:
        table.add_row(chip_name, model_name, *rerrs)
    print_table(table)

    results = {(chip, model): rerrs for chip, model, rerrs in rows}
    randbet_name = model_suite["randbet"].name
    rquant_name = model_suite["rquant"].name
    for chip_name in ("chip1", "chip2"):
        # RandBET generalizes: no worse than the non-robust baseline at the
        # highest profiled rate.
        assert results[(chip_name, randbet_name)][-1] <= results[(chip_name, rquant_name)][-1] + 2.0
    # RErr grows (weakly) with the profiled rate for the robust model.
    assert results[("chip1", randbet_name)][0] <= results[("chip1", randbet_name)][-1] + 2.0
