"""Table 1 / Table 8 — impact of the quantization scheme on robustness.

The trained RQuant model's floating-point weights are re-quantized under each
scheme of the ablation ladder (global → per-layer → +asymmetric → +unsigned →
+rounding) and evaluated under random bit errors.  As in the paper, clean
error is essentially unaffected while RErr differs dramatically; the robust
scheme (RQuant) is the most robust and global quantization fails
catastrophically.
"""

import numpy as np

from conftest import print_table, NUM_ERROR_FIELDS
from repro.biterror import make_error_fields
from repro.eval import evaluate_clean_error, evaluate_robust_error
from repro.quant import FixedPointQuantizer, scheme_ladder
from repro.utils.tables import Table

EVAL_RATES = [0.0005, 0.005, 0.01]


def evaluate_ladder(trained, test, fields):
    rows = []
    for name, scheme in scheme_ladder(8).items():
        quantizer = FixedPointQuantizer(scheme)
        clean = 100.0 * evaluate_clean_error(trained.model, quantizer, test)
        rerrs = [
            100.0
            * evaluate_robust_error(
                trained.model, quantizer, test, rate, error_fields=fields
            ).mean_error
            for rate in EVAL_RATES
        ]
        rows.append((name, clean, rerrs))
    return rows


def test_tab1_quantization_scheme_ladder(benchmark, model_suite, cifar_task):
    _, test = cifar_task
    trained = model_suite["rquant"]
    num_weights = trained.result.quantized_weights.num_weights
    fields = make_error_fields(num_weights, 8, NUM_ERROR_FIELDS, seed=404)

    rows = benchmark.pedantic(
        lambda: evaluate_ladder(trained, test, fields), rounds=1, iterations=1
    )

    table = Table(
        title="Table 1: quantization scheme vs. robustness (8 bit, post-training quantization)",
        headers=["scheme", "clean Err (%)"]
        + [f"RErr p={100 * r:g}% " for r in EVAL_RATES],
    )
    for name, clean, rerrs in rows:
        table.add_row(name, clean, *rerrs)
    print_table(table)

    by_name = {name: (clean, rerrs) for name, clean, rerrs in rows}
    global_rerr = by_name["Eq. (1), global"][1][-1]
    normal_rerr = by_name["Eq. (1), per-layer (= NORMAL)"][1][-1]
    rquant_rerr = by_name["+rounding (= RQUANT)"][1][-1]
    # Shape: global quantization is far worse than per-layer; the full robust
    # scheme is at least as good as the NORMAL baseline at the highest rate.
    assert global_rerr >= normal_rerr
    assert rquant_rerr <= normal_rerr + 1e-9
    # Clean error is essentially unaffected by the scheme (within a few %).
    cleans = [clean for _, clean, _ in rows]
    assert max(cleans) - min(cleans) <= 20.0
