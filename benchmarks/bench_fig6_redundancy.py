"""Fig. 6 / Fig. 10 — why clipping helps: confidences, logits and redundancy.

Reports, for RQuant, Clipping and RandBET: the clean and perturbed average
confidence, the logit magnitudes, and the redundancy metrics of Fig. 10
(relative absolute weight error under bit errors, weight relevance, ReLU
relevance).  The paper's shape: the clipped model keeps high clean
confidences, loses much less confidence under bit errors, and uses its
weights more uniformly (higher weight relevance).
"""

import numpy as np

from conftest import print_table
from repro.biterror import inject_into_quantized
from repro.eval import confidence_statistics, redundancy_metrics
from repro.quant.qat import quantize_model
from repro.utils.tables import Table

RATE = 0.01


def evaluate_models(model_suite, test):
    rows = []
    rng = np.random.default_rng(99)
    for key in ("rquant", "clipping", "randbet"):
        trained = model_suite[key]
        quantized = quantize_model(trained.model, trained.quantizer)
        corrupted = inject_into_quantized(quantized, RATE, rng)
        perturbed_weights = trained.quantizer.dequantize(corrupted)
        confidence = confidence_statistics(
            trained.model, trained.quantizer, test, perturbed_weights=perturbed_weights
        )
        redundancy = redundancy_metrics(
            trained.model, trained.quantizer, test, bit_error_rate=RATE, num_samples=3
        )
        rows.append((trained.name, confidence, redundancy))
    return rows


def test_fig6_confidences_and_redundancy(benchmark, model_suite, cifar_task):
    _, test = cifar_task
    rows = benchmark.pedantic(lambda: evaluate_models(model_suite, test), rounds=1, iterations=1)

    table = Table(
        title=f"Fig. 6 / Fig. 10: confidences and redundancy (p = {100 * RATE:g}%)",
        headers=[
            "model", "conf clean (%)", "conf perturbed (%)", "mean max logit",
            "rel. abs error", "weight relevance", "ReLU relevance",
        ],
        float_digits=3,
    )
    for name, confidence, redundancy in rows:
        table.add_row(
            name,
            100.0 * confidence["confidence_clean"],
            100.0 * confidence["confidence_perturbed"],
            confidence["clean_mean_max_logit"],
            redundancy["relative_abs_error"],
            redundancy["weight_relevance"],
            redundancy["relu_relevance"],
        )
    print_table(table)

    by_name = {name: (conf, red) for name, conf, red in rows}
    names = list(by_name)
    rquant_conf, rquant_red = by_name[names[0]]
    clipping_conf, clipping_red = by_name[names[1]]
    # The clipped model still produces usable clean confidences (well above
    # the 10-class chance level of 0.1; the absolute level is lower than the
    # paper's because the benchmark model is tiny).
    assert clipping_conf["confidence_clean"] > 0.3
    # Clipping loses no more confidence under bit errors than RQuant.
    assert clipping_conf["confidence_gap"] <= rquant_conf["confidence_gap"] + 0.1
    # Clipping spreads the weight distribution: higher weight relevance.
    assert clipping_red["weight_relevance"] >= rquant_red["weight_relevance"] - 0.02
