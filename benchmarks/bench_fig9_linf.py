"""Fig. 9 — weight clipping also improves robustness to random L-inf weight noise.

Evaluates RErr under uniform random noise bounded relative to each tensor's
weight range, for the unclipped (RQuant) and clipped models.  The paper's
shape: RErr grows with the noise magnitude and the clipped model degrades
more slowly.
"""

from conftest import print_table
from repro.eval import evaluate_linf_robustness
from repro.utils.tables import Table

MAGNITUDES = [0.0, 0.02, 0.05, 0.1]


def test_fig9_linf_weight_noise(benchmark, model_suite, cifar_task):
    _, test = cifar_task
    rquant = model_suite["rquant"]
    clipping = model_suite["clipping"]

    def evaluate():
        return {
            "RQUANT": evaluate_linf_robustness(
                rquant.model, rquant.quantizer, test, MAGNITUDES, num_samples=4, seed=3
            ),
            "CLIPPING": evaluate_linf_robustness(
                clipping.model, clipping.quantizer, test, MAGNITUDES, num_samples=4, seed=3
            ),
        }

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Fig. 9: RErr (%) under relative L-inf weight noise",
        headers=["model"] + [f"{100 * m:g}%" for m in MAGNITUDES],
    )
    for name, rows in results.items():
        table.add_row(name, *[100.0 * row["mean_error"] for row in rows])
    print_table(table)

    rquant_series = [row["mean_error"] for row in results["RQUANT"]]
    clipping_series = [row["mean_error"] for row in results["CLIPPING"]]
    # Error grows (weakly) with the noise magnitude.
    assert rquant_series[-1] >= rquant_series[0] - 0.02
    assert clipping_series[-1] >= clipping_series[0] - 0.02
    # The clipped model degrades no faster than the unclipped one at the
    # largest magnitude.
    assert clipping_series[-1] <= rquant_series[-1] + 0.05
