"""Table 11 — down-scaling the weights is not what makes clipping robust.

The paper's control experiment: take the unclipped (RQuant) model and scale
its weights down so the maximum absolute weight matches the clipped model's
range.  Because the decision of a DNN is (nearly) scale-invariant, this
shrinks the quantization range and the *absolute* bit error magnitude without
changing relative errors — and indeed robustness does not improve, showing
that clipping's benefit comes from the induced redundancy, not from the
smaller range.

At our scale the models use reparameterized group normalization, so exact
scale invariance does not hold; the benchmark therefore reports both the
clean error (to show the scaled model still works) and the RErr comparison.
"""

import copy

from conftest import print_table, rerr_percent, TrainedModel
from repro.core import scale_model_weights
from repro.core.clipping import max_absolute_weight
from repro.eval import evaluate_robust_error
from repro.utils.tables import Table

RATE = 0.01


def test_tab11_downscaling_is_not_clipping(benchmark, model_suite, cifar_task, error_fields_8bit):
    _, test = cifar_task
    rquant = model_suite["rquant"]
    clipping = model_suite["clipping"]

    def evaluate():
        # Copy the RQuant model and scale it to the clipped model's weight range.
        scaled_model = copy.deepcopy(rquant.model)
        target = max_absolute_weight(clipping.model)
        current = max_absolute_weight(scaled_model)
        scale_model_weights(scaled_model, target / current)

        rows = []
        for label, model, quantizer in (
            ("RQUANT", rquant.model, rquant.quantizer),
            ("RQUANT scaled to clipping range", scaled_model, rquant.quantizer),
            ("CLIPPING (trained with clipping)", clipping.model, clipping.quantizer),
        ):
            report = evaluate_robust_error(
                model, quantizer, test, RATE, error_fields=error_fields_8bit
            )
            rows.append((label, 100.0 * report.clean_error, 100.0 * report.mean_error))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 11: down-scaling weights vs. training with clipping",
        headers=["model", "Err (%)", f"RErr p={100 * RATE:g}%"],
    )
    for name, clean, rerr in rows:
        table.add_row(name, clean, rerr)
    print_table(table)

    results = {name: (clean, rerr) for name, clean, rerr in rows}
    clipped_rerr = results["CLIPPING (trained with clipping)"][1]
    scaled_rerr = results["RQUANT scaled to clipping range"][1]
    # Training with clipping is (weakly) better than just scaling down.
    assert clipped_rerr <= scaled_rerr + 2.0
