"""Table 3 / Table 16 — training on a fixed bit error pattern does not generalize.

Trains PattBET on one fixed error pattern at a high rate and evaluates it
(a) on the same pattern at the training rate and at a lower rate, and
(b) on completely random patterns.  The paper's striking finding is that
PattBET can even fail at *lower* rates of its own pattern and degrades badly
on random patterns, while RandBET (trained at the same rate budget)
generalizes.
"""

import numpy as np
import pytest

from conftest import (
    BATCH_SIZE,
    CLIP_WMAX,
    CONVS_PER_STAGE,
    EPOCHS,
    START_LOSS_THRESHOLD,
    WIDTHS,
    print_table,
)
from repro.biterror import BitErrorField
from repro.core import PattBETConfig, PattBETTrainer
from repro.eval import evaluate_robust_error
from repro.models import build_model
from repro.quant import FixedPointQuantizer, rquant
from repro.quant.qat import quantize_model, swap_weights
from repro.utils.tables import Table

TRAIN_RATE = 0.025
LOWER_RATE = 0.01


@pytest.fixture(scope="module")
def pattbet_model(cifar_task):
    """A PattBET model trained on one fixed random error pattern."""
    train, test = cifar_task
    rng = np.random.default_rng(55)
    model = build_model(
        "simplenet",
        in_channels=3,
        num_classes=train.num_classes,
        widths=WIDTHS,
        convs_per_stage=CONVS_PER_STAGE,
        rng=rng,
    )
    quantizer = FixedPointQuantizer(rquant(8))
    pattern = BitErrorField(model.num_parameters(), 8, rng=np.random.default_rng(77))
    config = PattBETConfig(
        epochs=EPOCHS,
        batch_size=BATCH_SIZE,
        bit_error_rate=TRAIN_RATE,
        clip_w_max=CLIP_WMAX,
        start_loss_threshold=START_LOSS_THRESHOLD,
        seed=55,
    )
    trainer = PattBETTrainer(model, quantizer, config, pattern=pattern)
    trainer.train(train, test)
    return model, quantizer, pattern


def error_on_pattern(model, quantizer, test, pattern, rate) -> float:
    """Test error (%) when the fixed pattern is applied at ``rate``."""
    quantized = quantize_model(model, quantizer)
    corrupted = pattern.apply_to_quantized(quantized, rate)
    weights = quantizer.dequantize(corrupted)
    errors = 0
    model.eval()
    with swap_weights(model, weights):
        inputs, labels = test[np.arange(len(test))]
        predictions = model(inputs).argmax(axis=1)
        errors = int((predictions != labels).sum())
    return 100.0 * errors / len(test)


def test_tab3_pattbet_does_not_generalize(
    benchmark, pattbet_model, model_suite, cifar_task, error_fields_8bit
):
    _, test = cifar_task
    model, quantizer, pattern = pattbet_model
    randbet = model_suite["randbet"]

    def evaluate():
        rows = {}
        rows["patt_on_pattern_train_rate"] = error_on_pattern(
            model, quantizer, test, pattern, TRAIN_RATE
        )
        rows["patt_on_pattern_lower_rate"] = error_on_pattern(
            model, quantizer, test, pattern, LOWER_RATE
        )
        rows["patt_on_random"] = 100.0 * evaluate_robust_error(
            model, quantizer, test, TRAIN_RATE, error_fields=error_fields_8bit
        ).mean_error
        rows["randbet_on_random"] = 100.0 * evaluate_robust_error(
            randbet.model, randbet.quantizer, test, TRAIN_RATE,
            error_fields=error_fields_8bit,
        ).mean_error
        rows["randbet_on_pattern"] = error_on_pattern(
            randbet.model, randbet.quantizer, test, pattern, TRAIN_RATE
        )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 3: fixed-pattern training (PattBET) vs. RandBET",
        headers=["evaluation", "RErr (%)"],
    )
    table.add_row(f"PattBET on its pattern, p={100 * TRAIN_RATE:g}%", rows["patt_on_pattern_train_rate"])
    table.add_row(f"PattBET on its pattern, p={100 * LOWER_RATE:g}%", rows["patt_on_pattern_lower_rate"])
    table.add_row(f"PattBET on random patterns, p={100 * TRAIN_RATE:g}%", rows["patt_on_random"])
    table.add_row(f"RandBET on random patterns, p={100 * TRAIN_RATE:g}%", rows["randbet_on_random"])
    table.add_row(f"RandBET on PattBET's pattern, p={100 * TRAIN_RATE:g}%", rows["randbet_on_pattern"])
    print_table(table)

    # Shape: PattBET handles its own training pattern well...
    assert rows["patt_on_pattern_train_rate"] <= rows["patt_on_random"] + 1e-9
    # ...but random patterns at the same rate are (weakly) harder for it than
    # for RandBET, which was trained on fresh random errors.
    assert rows["randbet_on_random"] <= rows["patt_on_random"] + 5.0
