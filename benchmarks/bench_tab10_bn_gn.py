"""Table 10 — batch normalization is less robust to bit errors than group norm.

Trains the same SimpleNet with group normalization (the paper's default) and
with batch normalization, and evaluates RErr.  BN is additionally evaluated
with batch statistics at test time, which the paper shows recovers most of
the robustness — evidence that the accumulated running statistics are the
fragile component.
"""

import pytest

from conftest import CLIP_WMAX, print_table, rerr_percent, train_simplenet
from repro.models.common import make_norm
from repro.nn import BatchNorm2d
from repro.utils.tables import Table

RATES = [0.005, 0.01]


@pytest.fixture(scope="module")
def bn_models(cifar_task):
    bn = train_simplenet(cifar_task, "BN (running stats)", clip_w_max=CLIP_WMAX, norm="bn")
    bn_batch = train_simplenet(
        cifar_task, "BN (batch stats at eval)", clip_w_max=CLIP_WMAX, norm="bn-batchstats"
    )
    return bn, bn_batch


def test_tab10_bn_vs_gn(benchmark, model_suite, bn_models, cifar_task, error_fields_8bit):
    _, test = cifar_task
    gn = model_suite["clipping"]
    bn, bn_batch = bn_models

    def evaluate():
        rows = []
        for trained, label in ((gn, "GN"), (bn, "BN (running stats)"), (bn_batch, "BN (batch stats)")):
            rerrs = [rerr_percent(trained, test, rate, error_fields_8bit) for rate in RATES]
            rows.append((label, 100.0 * trained.clean_error, rerrs))
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 10: group vs. batch normalization under bit errors",
        headers=["normalization", "Err (%)"] + [f"RErr p={100 * r:g}%" for r in RATES],
    )
    for name, clean, rerrs in rows:
        table.add_row(name, clean, *rerrs)
    print_table(table)

    results = {name: rerrs for name, _, rerrs in rows}
    # GN is at least as robust as BN with running statistics at the higher rate.
    assert results["GN"][-1] <= results["BN (running stats)"][-1] + 5.0
    # Using batch statistics at test time does not hurt compared to running stats.
    assert results["BN (batch stats)"][-1] <= results["BN (running stats)"][-1] + 5.0


def test_bn_fixture_uses_batchnorm():
    layer = make_norm("bn", 8)
    assert isinstance(layer, BatchNorm2d)
