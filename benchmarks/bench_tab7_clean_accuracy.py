"""Table 7 — clean accuracy under quantization-aware training at various precisions.

Reports the clean test error of the trained models when their weights are
quantized to m = 8, 6, 4, 3, 2 bits (post-training re-quantization of the
8-bit clipping model, plus the dedicated 4-bit trained models).  The paper's
shape: 8 and 4 bit are essentially free, lower precisions start to cost
accuracy.
"""

from conftest import print_table
from repro.eval import evaluate_clean_error
from repro.quant import FixedPointQuantizer, rquant
from repro.utils.tables import Table

PRECISIONS = [8, 6, 4, 3, 2]


def test_tab7_clean_error_vs_precision(benchmark, model_suite, cifar_task):
    _, test = cifar_task
    clipping = model_suite["clipping"]
    clipping_4bit = model_suite["clipping_4bit"]

    def evaluate():
        rows = []
        for precision in PRECISIONS:
            quantizer = FixedPointQuantizer(rquant(precision))
            error = 100.0 * evaluate_clean_error(clipping.model, quantizer, test)
            rows.append((f"CLIPPING (8-bit trained), m={precision}", error))
        rows.append(
            (
                "CLIPPING (4-bit QAT), m=4",
                100.0 * evaluate_clean_error(
                    clipping_4bit.model, clipping_4bit.quantizer, test
                ),
            )
        )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Table 7: clean test error vs. quantization precision",
        headers=["model / precision", "clean Err (%)"],
    )
    for name, error in rows:
        table.add_row(name, error)
    print_table(table)

    errors = {name: error for name, error in rows}
    err_8 = errors["CLIPPING (8-bit trained), m=8"]
    err_4 = errors["CLIPPING (8-bit trained), m=4"]
    err_2 = errors["CLIPPING (8-bit trained), m=2"]
    # 8 -> 4 bit costs little; 2 bit costs (weakly) more than 8 bit.
    assert err_4 <= err_8 + 10.0
    assert err_2 >= err_8 - 1e-9
    # Quantization-aware 4-bit training matches or beats post-training 4 bit.
    assert errors["CLIPPING (4-bit QAT), m=4"] <= err_4 + 5.0
