"""Microbenchmark: dense vs. sparse bit-error injection throughput.

The hot path of every RErr benchmark is "build a XOR mask for one chip at
rate ``p`` and apply it to the quantized codes".  The dense reference backend
pays ``O(W * m)`` per injection (it compares every stored threshold against
``p``); the sparse backend pays ``O(p * W * m)`` (it slices a pre-sorted
prefix of order statistics and scatters it).  This script measures both on a
1M-weight model across the paper's rate regime and checks the acceptance
criterion: **>= 10x speedup at p <= 1e-3**.

Run the full benchmark (1M weights, a few seconds)::

    PYTHONPATH=src python benchmarks/bench_injection_throughput.py

Fast smoke mode for CI (50k weights, 1 repeat, no speedup assertion)::

    PYTHONPATH=src python benchmarks/bench_injection_throughput.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.biterror.backends import DenseFieldBackend, SparseFieldBackend
from repro.telemetry.perf import add_json_argument, perf_row, write_perf_records
from repro.utils.tables import Table

RATES = (1e-4, 1e-3, 1e-2)


def time_apply(backend, codes: np.ndarray, p: float, repeats: int) -> float:
    """Median seconds per ``backend.apply(codes, p)`` call."""
    backend.apply(codes, p)  # warm-up (first-touch, searchsorted caches)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        backend.apply(codes, p)
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--weights", type=int, default=1_000_000,
                        help="number of quantized weights W (default 1M)")
    parser.add_argument("--precision", type=int, default=8,
                        help="bits per weight m (default 8)")
    parser.add_argument("--repeats", type=int, default=7,
                        help="timing repeats per (backend, rate) pair")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny fast run for CI; skips the speedup check")
    add_json_argument(parser)
    args = parser.parse_args()

    if args.smoke:
        args.weights = min(args.weights, 50_000)
        args.repeats = 1

    rng = np.random.default_rng(args.seed)
    codes = rng.integers(0, 2**args.precision, size=args.weights).astype(
        np.uint8 if args.precision <= 8 else np.uint16
    )
    max_rate = max(RATES)

    print(f"W = {args.weights:,} weights x m = {args.precision} bits "
          f"({args.weights * args.precision:,} stored bits), "
          f"{args.repeats} repeat(s)")

    start = time.perf_counter()
    dense = DenseFieldBackend(args.weights, args.precision,
                              np.random.default_rng(args.seed + 1))
    dense_build = time.perf_counter() - start
    start = time.perf_counter()
    sparse = SparseFieldBackend(args.weights, args.precision,
                                np.random.default_rng(args.seed + 1),
                                max_rate=max_rate)
    sparse_build = time.perf_counter() - start
    print(f"field construction: dense {dense_build * 1e3:.1f} ms "
          f"({dense._thresholds.nbytes / 2**20:.1f} MiB), "
          f"sparse {sparse_build * 1e3:.1f} ms "
          f"({(sparse._positions.nbytes + sparse._sorted_thresholds.nbytes) / 2**20:.2f} MiB, "
          f"max_rate={max_rate})")

    table = Table(
        title="injection throughput (median per chip-injection)",
        headers=["rate p", "flips", "dense [ms]", "sparse [ms]", "speedup"],
        float_digits=3,
    )
    speedups = {}
    for p in RATES:
        dense_t = time_apply(dense, codes, p, args.repeats)
        sparse_t = time_apply(sparse, codes, p, args.repeats)
        speedups[p] = dense_t / max(sparse_t, 1e-12)
        table.add_row(f"{p:g}", sparse.num_errors(p),
                      dense_t * 1e3, sparse_t * 1e3, f"{speedups[p]:.1f}x")
    print("\n" + table.render() + "\n")

    write_perf_records(args.json_path, [
        perf_row("injection_throughput", f"sparse_speedup_p{p:g}", speedups[p],
                 criterion=">= 10x at p <= 1e-3" if p <= 1e-3 else None,
                 weights=args.weights, smoke=args.smoke)
        for p in RATES
    ])

    if args.smoke:
        print("smoke mode: skipping speedup assertion")
        return 0
    failed = [p for p in RATES if p <= 1e-3 and speedups[p] < 10.0]
    if failed:
        print(f"FAIL: speedup below 10x at rates {failed}")
        return 1
    print("OK: >= 10x sparse speedup at every rate p <= 1e-3")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
