"""Table 6 — architectures, number of weights and expected bit errors.

Builds every registered architecture at the benchmark scale and reports the
total number of weights W and the expected number of flipped bits p*m*W for a
range of bit error rates, mirroring Table 6 of the paper.
"""

import numpy as np

from conftest import print_table
from repro.biterror import expected_bit_errors
from repro.models import build_model, list_models, model_summary
from repro.utils.tables import Table

RATES = [0.001, 0.005, 0.01]
PRECISION = 8

MODEL_KWARGS = {
    "mlp": dict(in_features=768, num_classes=10, hidden=(64, 64)),
    "lenet": dict(in_channels=1, num_classes=10, width=8),
    "simplenet": dict(in_channels=3, num_classes=10, widths=(12, 24), convs_per_stage=1),
    "resnet": dict(in_channels=3, num_classes=10, widths=(8, 16), blocks_per_stage=1),
    "wideresnet": dict(in_channels=3, num_classes=10, base_width=4, widen_factor=2),
}


def build_summaries():
    rows = []
    for name in list_models():
        model = build_model(name, rng=np.random.default_rng(0), **MODEL_KWARGS[name])
        summary = model_summary(model)
        expected = [
            expected_bit_errors(summary["num_parameters"], PRECISION, rate)
            for rate in RATES
        ]
        rows.append((name, summary["num_parameters"], expected))
    return rows


def test_tab6_architectures(benchmark):
    rows = benchmark.pedantic(build_summaries, rounds=1, iterations=1)

    table = Table(
        title="Table 6: architectures, weight counts and expected bit errors (m=8)",
        headers=["model", "W (weights)"] + [f"E[#errors] p={100 * r:g}%" for r in RATES],
        float_digits=0,
    )
    for name, num_weights, expected in rows:
        table.add_row(name, num_weights, *expected)
    print_table(table)

    counts = {name: n for name, n, _ in rows}
    # Every architecture builds and has a non-trivial number of weights.
    assert all(n > 100 for n in counts.values())
    # Expected error counts scale linearly with the rate.
    for _, num_weights, expected in rows:
        assert np.isclose(expected[-1] / expected[0], RATES[-1] / RATES[0])
        assert np.isclose(expected[0], RATES[0] * PRECISION * num_weights)
