"""Fig. 11 / Tables 18–21 — RErr curves across quantization precisions.

Evaluates the clipped model re-quantized at m = 8, 6, 4, 3 bits (post-training)
plus the dedicated 4-bit RandBET model, at increasing bit error rates.  The
paper's shape: lower precision increases clean error somewhat and RErr rises
earlier, but the robust recipe keeps curves flat well past p = 0.1%.
"""

from conftest import NUM_ERROR_FIELDS, print_table
from repro.biterror import make_error_fields
from repro.eval import evaluate_robust_error
from repro.quant import FixedPointQuantizer, rquant
from repro.utils.tables import Table

RATES = [0.0, 0.005, 0.01]
PRECISIONS = [8, 6, 4, 3]


def test_fig11_precision_sweep(benchmark, model_suite, cifar_task):
    _, test = cifar_task
    clipping = model_suite["clipping"]
    randbet4 = model_suite["randbet_4bit"]
    num_weights = clipping.result.quantized_weights.num_weights

    def evaluate():
        rows = []
        for precision in PRECISIONS:
            quantizer = FixedPointQuantizer(rquant(precision))
            fields = make_error_fields(num_weights, precision, NUM_ERROR_FIELDS, seed=500 + precision)
            series = [
                100.0
                * evaluate_robust_error(
                    clipping.model, quantizer, test, rate, error_fields=fields
                ).mean_error
                for rate in RATES
            ]
            rows.append((f"CLIPPING, m={precision}", series))
        fields4 = make_error_fields(
            randbet4.result.quantized_weights.num_weights, 4, NUM_ERROR_FIELDS, seed=504
        )
        rows.append(
            (
                "RANDBET (4-bit QAT), m=4",
                [
                    100.0
                    * evaluate_robust_error(
                        randbet4.model, randbet4.quantizer, test, rate, error_fields=fields4
                    ).mean_error
                    for rate in RATES
                ],
            )
        )
        return rows

    rows = benchmark.pedantic(evaluate, rounds=1, iterations=1)

    table = Table(
        title="Fig. 11: RErr (%) vs. bit error rate for different precisions",
        headers=["model / precision"] + [f"p={100 * r:g}%" for r in RATES],
    )
    for name, series in rows:
        table.add_row(name, *series)
    print_table(table)

    by_name = dict(rows)
    # Clean error (p=0 column) does not improve as precision drops.
    assert by_name["CLIPPING, m=3"][0] >= by_name["CLIPPING, m=8"][0] - 2.0
    # Every configuration degrades (weakly) monotonically with p.
    for name, series in rows:
        assert series[-1] >= series[0] - 2.0
    # Dedicated 4-bit robust training is in the same ballpark as (or better
    # than) post-training 4-bit quantization at the highest rate.
    assert by_name["RANDBET (4-bit QAT), m=4"][-1] <= by_name["CLIPPING, m=4"][-1] + 6.0
