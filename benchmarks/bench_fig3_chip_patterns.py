"""Fig. 3 / Fig. 8 / App. C.1 — profiled chip bit error patterns.

Regenerates the statistics the paper reports about its profiled chips: the
bit error rate at two "voltages" (cell fault rates), the persistence/subset
property across voltages, the 0-to-1 vs. 1-to-0 flip split, and the column
alignment that distinguishes chip 2 from chip 1.
"""

import numpy as np

from conftest import print_table
from repro.utils.tables import Table

LOW_RATE = 0.0086  # chip 1's higher-voltage operating point in the paper (~0.86%)
HIGH_RATE = 0.0275  # chip 1's lower-voltage operating point (~2.75%)


def chip_statistics(chips):
    rows = []
    for name, chip in chips.items():
        low_map = chip.fault_map(LOW_RATE)
        high_map = chip.fault_map(HIGH_RATE)
        p_0to1, p_1to0 = high_map.flip_direction_rates()
        subset = bool(np.all(high_map.faulty[low_map.faulty]))
        column_var = float(np.var(chip.column_fault_counts(HIGH_RATE)))
        rows.append(
            {
                "chip": name,
                "p_low": 100.0 * low_map.empirical_rate(),
                "p_high": 100.0 * high_map.empirical_rate(),
                "p_0to1": 100.0 * p_0to1,
                "p_1to0": 100.0 * p_1to0,
                "subset": subset,
                "column_var": column_var,
            }
        )
    return rows


def test_fig3_chip_error_patterns(benchmark, profiled_chips):
    rows = benchmark.pedantic(lambda: chip_statistics(profiled_chips), rounds=1, iterations=1)

    table = Table(
        title="Fig. 3 / Fig. 8: simulated profiled chips",
        headers=[
            "chip", "p low V (%)", "p high V (%)", "p 0-to-1 (%)", "p 1-to-0 (%)",
            "subset across V", "column variance",
        ],
        float_digits=3,
    )
    for row in rows:
        table.add_row(
            row["chip"], row["p_low"], row["p_high"], row["p_0to1"], row["p_1to0"],
            str(row["subset"]), row["column_var"],
        )
    print_table(table)

    by_chip = {row["chip"]: row for row in rows}
    # Rates match the requested fault rates.
    for row in rows:
        assert abs(row["p_low"] - 100 * LOW_RATE) < 0.1
        assert abs(row["p_high"] - 100 * HIGH_RATE) < 0.1
        # Persistence: higher-voltage errors are a subset of lower-voltage errors.
        assert row["subset"]
    # Chip 2 is biased towards 0-to-1 flips and strongly column aligned,
    # chip 1 is balanced and uniform (Fig. 3 / Fig. 8).
    assert by_chip["chip2"]["p_0to1"] > by_chip["chip2"]["p_1to0"]
    assert by_chip["chip2"]["column_var"] > 2 * by_chip["chip1"]["column_var"]
